//! Per-group state kept by a service instance (the Group Maintenance module
//! of the paper's architecture, Figure 2).
//!
//! Membership is stored densely: one [`MemberTable`] per group holds, per
//! remote workstation, everything the three former side tables (`members`,
//! `representatives`, `requested_by_peers`) kept separately — so applying
//! one ALIVE payload touches a single sorted-vector entry instead of three
//! tree maps.

use sle_adaptive::AnyTuner;
use sle_election::{AnyElector, LeaderElector};
use sle_fd::{FailureDetector, FdConfigurator, MonitorArena, QosSpec};
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

use crate::config::{JoinConfig, NotificationMode};
use crate::lease::LeaderLease;
use crate::process::{GroupId, ProcessId};

/// What a service instance knows about one remote member workstation of a
/// group: its processes, when we last heard from it, the representative it
/// advertises and the ALIVE interval it asked us for.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberEntry {
    /// The remote workstation.
    pub peer: NodeId,
    /// The remote workstation's incarnation when this information was learnt.
    pub incarnation: u64,
    /// When we last heard a HELLO or ALIVE from it for this group.
    pub last_heard: SimInstant,
    /// The remote processes in the group and whether each is a candidate.
    pub processes: Vec<(ProcessId, bool)>,
    /// The representative candidate process the member advertises in its
    /// ALIVEs, if any.
    pub representative: Option<ProcessId>,
    /// The ALIVE interval the member asked us to use towards it.
    pub requested_interval: Option<SimDuration>,
}

impl MemberEntry {
    fn new(peer: NodeId, incarnation: u64, last_heard: SimInstant) -> Self {
        MemberEntry {
            peer,
            incarnation,
            last_heard,
            processes: Vec::new(),
            representative: None,
            requested_interval: None,
        }
    }

    /// True if any of the remote processes is a candidate.
    pub fn has_candidate(&self) -> bool {
        self.processes.iter().any(|(_, candidate)| *candidate)
    }

    /// The member's representative candidate: the one it advertises, else
    /// its first candidate process.
    pub fn representative_process(&self) -> Option<ProcessId> {
        self.representative.or_else(|| {
            self.processes
                .iter()
                .filter(|(_, candidate)| *candidate)
                .map(|(process, _)| *process)
                .min()
        })
    }
}

/// The remote membership of one group, sorted by peer id.
///
/// Lookups are binary searches over contiguous entries; iteration is in
/// deterministic peer order. Sizes are bounded by group fan-out.
#[derive(Debug, Clone, Default)]
pub struct MemberTable {
    entries: Vec<MemberEntry>,
}

impl MemberTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn find(&self, peer: NodeId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&peer, |e| e.peer)
    }

    /// The entry for `peer`, if known.
    pub fn get(&self, peer: NodeId) -> Option<&MemberEntry> {
        self.find(peer).ok().map(|i| &self.entries[i])
    }

    /// Mutable access to the entry for `peer`, if known.
    pub fn get_mut(&mut self, peer: NodeId) -> Option<&mut MemberEntry> {
        match self.find(peer) {
            Ok(i) => Some(&mut self.entries[i]),
            Err(_) => None,
        }
    }

    /// The entry for `peer`, created with `incarnation` stamped `now` on
    /// first sight. An existing entry just gets `last_heard` refreshed.
    pub fn ensure(&mut self, peer: NodeId, incarnation: u64, now: SimInstant) -> &mut MemberEntry {
        let i = match self.find(peer) {
            Ok(i) => {
                self.entries[i].last_heard = now;
                i
            }
            Err(i) => {
                self.entries
                    .insert(i, MemberEntry::new(peer, incarnation, now));
                i
            }
        };
        &mut self.entries[i]
    }

    /// Forgets everything about `peer`, returning its entry if it existed.
    pub fn remove(&mut self, peer: NodeId) -> Option<MemberEntry> {
        match self.find(peer) {
            Ok(i) => Some(self.entries.remove(i)),
            Err(_) => None,
        }
    }

    /// Iterates over all entries in ascending peer order.
    pub fn iter(&self) -> impl Iterator<Item = &MemberEntry> + '_ {
        self.entries.iter()
    }

    /// Iterates over the member node ids in ascending order.
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.peer)
    }

    /// Keeps only the entries for which `keep` returns true.
    pub fn retain(&mut self, keep: impl FnMut(&MemberEntry) -> bool) {
        self.entries.retain(keep);
    }

    /// Number of member workstations known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if no members are known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The full state a service instance keeps for one group it participates in.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// The group's identifier.
    pub group: GroupId,
    /// The failure-detection QoS used for this group.
    pub qos: QosSpec,
    /// The notification mode requested by the most recent local join.
    pub notification: NotificationMode,
    /// Local processes that joined the group, with their candidate flags,
    /// sorted by local slot.
    pub local_processes: Vec<(u32, bool)>,
    /// The election algorithm instance for this group.
    pub elector: AnyElector,
    /// The per-group failure detector monitoring the other members.
    pub fd: FailureDetector,
    /// Remote membership learnt from HELLO/ALIVE messages.
    pub members: MemberTable,
    /// When this group is next due to fan out ALIVEs. The per-node ALIVE
    /// tick (see `ServiceNode`) fires at the minimum of these across all
    /// groups and sends for every group that is due.
    pub next_alive_at: SimInstant,
    /// The leader last announced to local applications (to detect changes).
    pub announced_leader: Option<ProcessId>,
    /// When this node joined the group (start of the self-election grace
    /// period: a freshly joined candidate does not claim the leadership for
    /// itself until it had a chance to learn about the incumbent).
    pub joined_at: SimInstant,
    /// The QoS tuner selected by the join configuration (static by default).
    pub tuner: AnyTuner,
    /// The election grace period recommended by the tuner, if any; overrides
    /// the static `2 × T_D^U` once adaptive tuning has converged.
    pub tuned_grace: Option<SimDuration>,
    /// The lease this node holds as the group's current leader, if any
    /// (minted/renewed by `ServiceNode`, dropped on losing the leadership).
    pub lease: Option<LeaderLease>,
    /// The most recent lease heard from a *remote* leader's `LeaseGrant`
    /// broadcast (`renewed_at` is the local receipt time).
    pub remote_lease: Option<LeaderLease>,
    /// When the local elector's output last *became* this node (cleared the
    /// moment it stops leading). A lease is only minted after leading
    /// continuously for `T_D`, so a deposed leader's lease lapses before a
    /// successor starts serving — closing the double-leadership window.
    pub led_since: Option<SimInstant>,
    /// The deadline the group's FD wheel timer is currently armed at, if
    /// any. Heartbeats *extend* freshness horizons, so re-arming on every
    /// arrival would flood the timer wheel with superseded entries; the
    /// service only re-arms when the next deadline moved *earlier*, and
    /// lets an already-armed timer fire early as a cheap no-op poll.
    pub armed_fd_deadline: Option<SimInstant>,
}

impl GroupState {
    /// Creates the state for a group the local node just joined. The
    /// group's failure detector draws its per-peer liveness records from
    /// `arena`, the workstation-wide store shared by every group.
    pub fn new(
        group: GroupId,
        me: NodeId,
        algorithm: sle_election::ElectorKind,
        config: &JoinConfig,
        arena: &MonitorArena,
        now: SimInstant,
    ) -> Self {
        GroupState {
            group,
            qos: config.qos,
            notification: config.notification,
            local_processes: Vec::new(),
            elector: AnyElector::new(algorithm, me, config.candidate, now),
            fd: FailureDetector::with_arena(config.qos, FdConfigurator::default(), arena.clone()),
            members: MemberTable::new(),
            next_alive_at: now,
            announced_leader: None,
            joined_at: now,
            tuner: AnyTuner::new(config.tuning),
            tuned_grace: None,
            lease: None,
            remote_lease: None,
            led_since: None,
            armed_fd_deadline: None,
        }
    }

    /// Adds or updates a local process in the group.
    pub fn upsert_local_process(&mut self, local: u32, candidate: bool) {
        match self
            .local_processes
            .binary_search_by_key(&local, |&(l, _)| l)
        {
            Ok(i) => self.local_processes[i].1 = candidate,
            Err(i) => self.local_processes.insert(i, (local, candidate)),
        }
    }

    /// Removes a local process; returns true if it was in the group.
    pub fn remove_local_process(&mut self, local: u32) -> bool {
        match self
            .local_processes
            .binary_search_by_key(&local, |&(l, _)| l)
        {
            Ok(i) => {
                self.local_processes.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// How long after joining this node refrains from announcing *itself* as
    /// the leader (twice the crash-detection bound: enough to hear from an
    /// incumbent leader if there is one). An adaptive tuner shrinks this
    /// alongside the detection bound.
    pub fn self_election_grace(&self) -> SimDuration {
        self.tuned_grace
            .unwrap_or_else(|| self.qos.detection_time() * 2)
    }

    /// True if any local process joined this group as a candidate.
    pub fn locally_candidate(&self) -> bool {
        self.local_processes.iter().any(|&(_, candidate)| candidate)
    }

    /// The local representative candidate process, if any.
    pub fn local_representative(&self, me: NodeId) -> Option<ProcessId> {
        self.local_processes
            .iter()
            .filter(|&&(_, candidate)| candidate)
            .map(|&(local, _)| ProcessId::new(me, local))
            .min()
    }

    /// The interval at which this node should currently send ALIVEs for the
    /// group: the most demanding (smallest) of what the peers asked for,
    /// never exceeding the default derived from the group's QoS.
    pub fn send_interval(&self) -> SimDuration {
        let default = self
            .qos
            .detection_time()
            .mul_f64(0.25)
            .max(SimDuration::from_millis(5));
        self.members
            .iter()
            .filter_map(|e| e.requested_interval)
            .fold(default, SimDuration::min)
    }

    /// Maps an elected node to the elected process announced to applications.
    pub fn leader_process(&self, me: NodeId, leader_node: Option<NodeId>) -> Option<ProcessId> {
        let node = leader_node?;
        if node == me {
            self.local_representative(me)
        } else if let Some(entry) = self.members.get(node) {
            entry.representative_process()
        } else {
            // We elected a node we have no process information about yet;
            // announce its service instance's first process slot.
            Some(ProcessId::new(node, 0))
        }
    }

    /// Whether this node should currently be emitting ALIVE messages for the
    /// group.
    pub fn should_send_alives(&self) -> bool {
        self.locally_candidate() && self.elector.is_competing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_election::ElectorKind;

    fn state() -> GroupState {
        GroupState::new(
            GroupId(1),
            NodeId(0),
            ElectorKind::OmegaLc,
            &JoinConfig::candidate(),
            &MonitorArena::new(),
            SimInstant::ZERO,
        )
    }

    #[test]
    fn local_candidacy_and_representative() {
        let mut group = state();
        assert!(!group.locally_candidate());
        assert_eq!(group.local_representative(NodeId(0)), None);
        group.upsert_local_process(3, false);
        group.upsert_local_process(1, true);
        group.upsert_local_process(2, true);
        assert!(group.locally_candidate());
        assert_eq!(
            group.local_representative(NodeId(0)),
            Some(ProcessId::new(NodeId(0), 1))
        );
        assert!(group.remove_local_process(1));
        assert!(!group.remove_local_process(1));
        assert_eq!(
            group.local_representative(NodeId(0)),
            Some(ProcessId::new(NodeId(0), 2))
        );
    }

    #[test]
    fn send_interval_takes_the_most_demanding_request() {
        let mut group = state();
        // Default: a quarter of the 1 s detection bound.
        assert_eq!(group.send_interval(), SimDuration::from_millis(250));
        group
            .members
            .ensure(NodeId(1), 0, SimInstant::ZERO)
            .requested_interval = Some(SimDuration::from_millis(100));
        group
            .members
            .ensure(NodeId(2), 0, SimInstant::ZERO)
            .requested_interval = Some(SimDuration::from_millis(400));
        assert_eq!(group.send_interval(), SimDuration::from_millis(100));
    }

    #[test]
    fn leader_process_resolution() {
        let mut group = state();
        group.upsert_local_process(0, true);
        assert_eq!(
            group.leader_process(NodeId(0), Some(NodeId(0))),
            Some(ProcessId::new(NodeId(0), 0))
        );
        assert_eq!(group.leader_process(NodeId(0), None), None);
        // Unknown remote node: fall back to its slot 0.
        assert_eq!(
            group.leader_process(NodeId(0), Some(NodeId(7))),
            Some(ProcessId::new(NodeId(7), 0))
        );
        // Known via membership.
        group
            .members
            .ensure(NodeId(2), 0, SimInstant::ZERO)
            .processes = vec![(ProcessId::new(NodeId(2), 4), true)];
        assert_eq!(
            group.leader_process(NodeId(0), Some(NodeId(2))),
            Some(ProcessId::new(NodeId(2), 4))
        );
        // An explicit representative advertised in ALIVEs takes precedence.
        group.members.get_mut(NodeId(2)).unwrap().representative =
            Some(ProcessId::new(NodeId(2), 9));
        assert_eq!(
            group.leader_process(NodeId(0), Some(NodeId(2))),
            Some(ProcessId::new(NodeId(2), 9))
        );
    }

    #[test]
    fn member_entry_helpers() {
        let mut table = MemberTable::new();
        let entry = table.ensure(NodeId(3), 1, SimInstant::ZERO);
        entry.processes = vec![
            (ProcessId::new(NodeId(3), 2), false),
            (ProcessId::new(NodeId(3), 1), true),
        ];
        let entry = table.get(NodeId(3)).unwrap();
        assert!(entry.has_candidate());
        assert_eq!(
            entry.representative_process(),
            Some(ProcessId::new(NodeId(3), 1))
        );
        let passive = table.ensure(NodeId(4), 1, SimInstant::ZERO);
        passive.processes = vec![(ProcessId::new(NodeId(4), 2), false)];
        let passive = table.get(NodeId(4)).unwrap();
        assert!(!passive.has_candidate());
        assert_eq!(passive.representative_process(), None);
        // Table iterates in sorted peer order and removals work.
        assert_eq!(
            table.peers().collect::<Vec<_>>(),
            vec![NodeId(3), NodeId(4)]
        );
        assert!(table.remove(NodeId(3)).is_some());
        assert!(table.remove(NodeId(3)).is_none());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn should_send_alives_requires_local_candidate() {
        let mut group = state();
        assert!(!group.should_send_alives());
        group.upsert_local_process(0, true);
        assert!(group.should_send_alives());
    }
}
