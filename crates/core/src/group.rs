//! Per-group state kept by a service instance (the Group Maintenance module
//! of the paper's architecture, Figure 2).

use std::collections::BTreeMap;

use sle_adaptive::AnyTuner;
use sle_election::{AnyElector, LeaderElector};
use sle_fd::{FailureDetector, FdConfigurator, MonitorArena, QosSpec};
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

use crate::config::{JoinConfig, NotificationMode};
use crate::lease::LeaderLease;
use crate::process::{GroupId, ProcessId};

/// What a service instance knows about the group membership contributed by
/// one remote workstation.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteMember {
    /// The remote workstation's incarnation when this information was learnt.
    pub incarnation: u64,
    /// When we last heard a HELLO or ALIVE from it for this group.
    pub last_heard: SimInstant,
    /// The remote processes in the group and whether each is a candidate.
    pub processes: Vec<(ProcessId, bool)>,
}

impl RemoteMember {
    /// True if any of the remote processes is a candidate.
    pub fn has_candidate(&self) -> bool {
        self.processes.iter().any(|(_, candidate)| *candidate)
    }

    /// The remote node's representative candidate (its first candidate
    /// process), used to translate an elected node into an elected process.
    pub fn representative(&self) -> Option<ProcessId> {
        self.processes
            .iter()
            .filter(|(_, candidate)| *candidate)
            .map(|(process, _)| *process)
            .min()
    }
}

/// The full state a service instance keeps for one group it participates in.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// The group's identifier.
    pub group: GroupId,
    /// The failure-detection QoS used for this group.
    pub qos: QosSpec,
    /// The notification mode requested by the most recent local join.
    pub notification: NotificationMode,
    /// Local processes that joined the group, with their candidate flags.
    pub local_processes: BTreeMap<u32, bool>,
    /// The election algorithm instance for this group.
    pub elector: AnyElector,
    /// The per-group failure detector monitoring the other members.
    pub fd: FailureDetector,
    /// Remote membership learnt from HELLO/ALIVE messages.
    pub members: BTreeMap<NodeId, RemoteMember>,
    /// When this group is next due to fan out ALIVEs. The per-node ALIVE
    /// tick (see `ServiceNode`) fires at the minimum of these across all
    /// groups and sends for every group that is due.
    pub next_alive_at: SimInstant,
    /// The ALIVE interval each peer asked us to use towards it.
    pub requested_by_peers: BTreeMap<NodeId, SimDuration>,
    /// The representative candidate process advertised by each member node.
    pub representatives: BTreeMap<NodeId, ProcessId>,
    /// The leader last announced to local applications (to detect changes).
    pub announced_leader: Option<ProcessId>,
    /// When this node joined the group (start of the self-election grace
    /// period: a freshly joined candidate does not claim the leadership for
    /// itself until it had a chance to learn about the incumbent).
    pub joined_at: SimInstant,
    /// The QoS tuner selected by the join configuration (static by default).
    pub tuner: AnyTuner,
    /// The election grace period recommended by the tuner, if any; overrides
    /// the static `2 × T_D^U` once adaptive tuning has converged.
    pub tuned_grace: Option<SimDuration>,
    /// The lease this node holds as the group's current leader, if any
    /// (minted/renewed by `ServiceNode`, dropped on losing the leadership).
    pub lease: Option<LeaderLease>,
    /// The most recent lease heard from a *remote* leader's `LeaseGrant`
    /// broadcast (`renewed_at` is the local receipt time).
    pub remote_lease: Option<LeaderLease>,
    /// When the local elector's output last *became* this node (cleared the
    /// moment it stops leading). A lease is only minted after leading
    /// continuously for `T_D`, so a deposed leader's lease lapses before a
    /// successor starts serving — closing the double-leadership window.
    pub led_since: Option<SimInstant>,
}

impl GroupState {
    /// Creates the state for a group the local node just joined. The
    /// group's failure detector draws its per-peer liveness records from
    /// `arena`, the workstation-wide store shared by every group.
    pub fn new(
        group: GroupId,
        me: NodeId,
        algorithm: sle_election::ElectorKind,
        config: &JoinConfig,
        arena: &MonitorArena,
        now: SimInstant,
    ) -> Self {
        GroupState {
            group,
            qos: config.qos,
            notification: config.notification,
            local_processes: BTreeMap::new(),
            elector: AnyElector::new(algorithm, me, config.candidate, now),
            fd: FailureDetector::with_arena(config.qos, FdConfigurator::default(), arena.clone()),
            members: BTreeMap::new(),
            next_alive_at: now,
            requested_by_peers: BTreeMap::new(),
            representatives: BTreeMap::new(),
            announced_leader: None,
            joined_at: now,
            tuner: AnyTuner::new(config.tuning),
            tuned_grace: None,
            lease: None,
            remote_lease: None,
            led_since: None,
        }
    }

    /// How long after joining this node refrains from announcing *itself* as
    /// the leader (twice the crash-detection bound: enough to hear from an
    /// incumbent leader if there is one). An adaptive tuner shrinks this
    /// alongside the detection bound.
    pub fn self_election_grace(&self) -> SimDuration {
        self.tuned_grace
            .unwrap_or_else(|| self.qos.detection_time() * 2)
    }

    /// True if any local process joined this group as a candidate.
    pub fn locally_candidate(&self) -> bool {
        self.local_processes.values().any(|&candidate| candidate)
    }

    /// The local representative candidate process, if any.
    pub fn local_representative(&self, me: NodeId) -> Option<ProcessId> {
        self.local_processes
            .iter()
            .filter(|(_, &candidate)| candidate)
            .map(|(&local, _)| ProcessId::new(me, local))
            .min()
    }

    /// The interval at which this node should currently send ALIVEs for the
    /// group: the most demanding (smallest) of what the peers asked for,
    /// never exceeding the default derived from the group's QoS.
    pub fn send_interval(&self) -> SimDuration {
        let default = self
            .qos
            .detection_time()
            .mul_f64(0.25)
            .max(SimDuration::from_millis(5));
        self.requested_by_peers
            .values()
            .copied()
            .fold(default, SimDuration::min)
    }

    /// Maps an elected node to the elected process announced to applications.
    pub fn leader_process(&self, me: NodeId, leader_node: Option<NodeId>) -> Option<ProcessId> {
        let node = leader_node?;
        if node == me {
            self.local_representative(me)
        } else if let Some(repr) = self.representatives.get(&node) {
            Some(*repr)
        } else if let Some(member) = self.members.get(&node) {
            member.representative()
        } else {
            // We elected a node we have no process information about yet;
            // announce its service instance's first process slot.
            Some(ProcessId::new(node, 0))
        }
    }

    /// Whether this node should currently be emitting ALIVE messages for the
    /// group.
    pub fn should_send_alives(&self) -> bool {
        self.locally_candidate() && self.elector.is_competing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_election::ElectorKind;

    fn state() -> GroupState {
        GroupState::new(
            GroupId(1),
            NodeId(0),
            ElectorKind::OmegaLc,
            &JoinConfig::candidate(),
            &MonitorArena::new(),
            SimInstant::ZERO,
        )
    }

    #[test]
    fn local_candidacy_and_representative() {
        let mut group = state();
        assert!(!group.locally_candidate());
        assert_eq!(group.local_representative(NodeId(0)), None);
        group.local_processes.insert(3, false);
        group.local_processes.insert(1, true);
        group.local_processes.insert(2, true);
        assert!(group.locally_candidate());
        assert_eq!(
            group.local_representative(NodeId(0)),
            Some(ProcessId::new(NodeId(0), 1))
        );
    }

    #[test]
    fn send_interval_takes_the_most_demanding_request() {
        let mut group = state();
        // Default: a quarter of the 1 s detection bound.
        assert_eq!(group.send_interval(), SimDuration::from_millis(250));
        group
            .requested_by_peers
            .insert(NodeId(1), SimDuration::from_millis(100));
        group
            .requested_by_peers
            .insert(NodeId(2), SimDuration::from_millis(400));
        assert_eq!(group.send_interval(), SimDuration::from_millis(100));
    }

    #[test]
    fn leader_process_resolution() {
        let mut group = state();
        group.local_processes.insert(0, true);
        assert_eq!(
            group.leader_process(NodeId(0), Some(NodeId(0))),
            Some(ProcessId::new(NodeId(0), 0))
        );
        assert_eq!(group.leader_process(NodeId(0), None), None);
        // Unknown remote node: fall back to its slot 0.
        assert_eq!(
            group.leader_process(NodeId(0), Some(NodeId(7))),
            Some(ProcessId::new(NodeId(7), 0))
        );
        // Known via membership.
        group.members.insert(
            NodeId(2),
            RemoteMember {
                incarnation: 0,
                last_heard: SimInstant::ZERO,
                processes: vec![(ProcessId::new(NodeId(2), 4), true)],
            },
        );
        assert_eq!(
            group.leader_process(NodeId(0), Some(NodeId(2))),
            Some(ProcessId::new(NodeId(2), 4))
        );
        // An explicit representative advertised in ALIVEs takes precedence.
        group
            .representatives
            .insert(NodeId(2), ProcessId::new(NodeId(2), 9));
        assert_eq!(
            group.leader_process(NodeId(0), Some(NodeId(2))),
            Some(ProcessId::new(NodeId(2), 9))
        );
    }

    #[test]
    fn remote_member_helpers() {
        let member = RemoteMember {
            incarnation: 1,
            last_heard: SimInstant::ZERO,
            processes: vec![
                (ProcessId::new(NodeId(3), 2), false),
                (ProcessId::new(NodeId(3), 1), true),
            ],
        };
        assert!(member.has_candidate());
        assert_eq!(member.representative(), Some(ProcessId::new(NodeId(3), 1)));
        let passive = RemoteMember {
            incarnation: 1,
            last_heard: SimInstant::ZERO,
            processes: vec![(ProcessId::new(NodeId(3), 2), false)],
        };
        assert!(!passive.has_candidate());
        assert_eq!(passive.representative(), None);
    }

    #[test]
    fn should_send_alives_requires_local_candidate() {
        let mut group = state();
        assert!(!group.should_send_alives());
        group.local_processes.insert(0, true);
        assert!(group.should_send_alives());
    }
}
