//! The sharded real-time runtime for the service.
//!
//! The paper deploys one service daemon per workstation; applications link a
//! shared library that talks to the local daemon. [`Cluster`] plays the role
//! of a deployment: it runs one [`ServiceNode`] per endpoint, connects them
//! through any [`MessageEndpoint`] transport, and exposes the service API —
//! join/leave groups, query the leader, subscribe to leader-change events —
//! through [`ClusterHandle`].
//!
//! Internally the cluster is a **sharded event-loop runtime** (see
//! `docs/RUNTIME.md`): a fixed pool of worker threads, each owning
//!
//! * a *shard* of service nodes (node `i` lives on worker `i % workers`),
//! * a wall-clock [`TimerWheel`] keyed `(NodeId, TimerTag)` — the same
//!   `O(1)` hierarchical wheel the simulator's event queue uses, so firing
//!   the next timer never scans the pending set, and
//! * a [`sle_net::mailbox::Mailbox`] multiplexing incoming
//!   messages and [`ClusterHandle`] commands for every resident node behind
//!   **one** condvar-parked wait: the worker sleeps exactly until its
//!   wheel's next deadline or a wakeup, never on a fixed polling interval.
//!
//! Transports that support push-mode delivery
//! ([`MessageEndpoint::set_delivery_sink`] — the in-memory mesh and
//! `sle-udp` both do) deliver straight into the owning shard's mailbox and
//! wake its worker; pull-only endpoints are polled on a short cadence as a
//! compatibility fallback. Thread count is therefore O(workers) plus
//! whatever reader threads the transport itself needs — not O(nodes) —
//! which is what lets a 1000-node cluster run in real time on one machine
//! (`bench_runtime` in `sle-bench` measures exactly that).
//!
//! The protocol code is the same sans-io [`ServiceNode`] state machine the
//! simulator runs; this module merely drives it with the wall clock.
//! [`Cluster::start`] keeps the historical one-worker-per-node shape
//! (`workers = n`); [`ClusterConfig::with_workers`] selects a smaller pool.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sle_election::ElectorKind;
use sle_net::link::LinkSpec;
use sle_net::mailbox::Mailbox;
use sle_net::transport::{InMemoryMesh, Incoming, MessageEndpoint};
use sle_obs::clock::Clock;
use sle_obs::{Counter, ProtoEvent, Registry, TraceDrain, TraceRing, WallClock};
use sle_sim::actor::{Actor, Effect, NodeId, TimerTag};
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::wheel::TimerWheel;

use crate::config::{JoinConfig, ServiceConfig};
use crate::error::AgreementTimeout;
use crate::events::ServiceEvent;
use crate::lease::{FencedApp, LeaderLease};
use crate::messages::ServiceMessage;
use crate::node::{ServiceContext, ServiceNode};
use crate::obs::NodeInstruments;
use crate::process::{GroupId, ProcessId};

/// How often a shard polls endpoints that do not support push-mode delivery
/// (the compatibility fallback for custom [`MessageEndpoint`]s; the bundled
/// transports all push).
const PULL_POLL: Duration = Duration::from_millis(10);

/// A leader-change notification produced by some node of a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterEvent {
    /// The node on which the event was raised.
    pub node: NodeId,
    /// The event itself.
    pub event: ServiceEvent,
}

/// Deployment-level configuration of a [`Cluster`]: everything
/// [`Cluster::start`] used to hardcode, as an explicit surface.
///
/// ```
/// use sle_core::runtime::{Cluster, ClusterConfig};
/// use sle_election::ElectorKind;
/// use sle_sim::time::SimDuration;
///
/// // Eight workstations on a 2-worker shard pool, gossiping every 100 ms.
/// let config = ClusterConfig::new(ElectorKind::OmegaL)
///     .with_workers(2)
///     .with_hello_interval(SimDuration::from_millis(100))
///     .with_mesh_seed(7);
/// let cluster = Cluster::start_with_config(8, config);
/// assert_eq!(cluster.workers(), 2);
/// cluster.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The leader-election algorithm every service instance runs.
    pub algorithm: ElectorKind,
    /// Size of the shard worker pool. `None` (the default) keeps the
    /// historical one-worker-per-node shape — the legacy driver is exactly
    /// the sharded runtime with `workers = n`.
    pub workers: Option<usize>,
    /// How often service instances send HELLO membership gossip.
    pub hello_interval: SimDuration,
    /// Seed of the in-memory mesh's loss lottery (only used by the
    /// mesh-building constructors).
    pub mesh_seed: u64,
    /// Link behaviour of the in-memory mesh (only used by the mesh-building
    /// constructors).
    pub links: LinkSpec,
    /// When set, the cluster records live telemetry into this registry (QoS
    /// histograms, traffic counters, shard wakeup counters — see
    /// `docs/OBSERVABILITY.md`) and traces protocol events into per-shard
    /// rings drainable via [`Cluster::drain_trace`].
    pub observability: Option<Registry>,
    /// Capacity of each shard's protocol-event trace ring (only used when
    /// `observability` is set).
    pub trace_capacity: usize,
}

impl ClusterConfig {
    /// The defaults every historical constructor used: one worker per node,
    /// a 200 ms HELLO interval, mesh seed 42, perfect links.
    pub fn new(algorithm: ElectorKind) -> Self {
        ClusterConfig {
            algorithm,
            workers: None,
            hello_interval: SimDuration::from_millis(200),
            mesh_seed: 42,
            links: LinkSpec::perfect(),
            observability: None,
            trace_capacity: 4096,
        }
    }

    /// Runs the cluster on a fixed pool of `workers` shard workers
    /// (clamped to at least 1; more workers than nodes is capped at
    /// construction time).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Replaces the HELLO gossip interval.
    pub fn with_hello_interval(mut self, interval: SimDuration) -> Self {
        self.hello_interval = interval;
        self
    }

    /// Replaces the in-memory mesh seed.
    pub fn with_mesh_seed(mut self, seed: u64) -> Self {
        self.mesh_seed = seed;
        self
    }

    /// Replaces the in-memory mesh link behaviour.
    pub fn with_links(mut self, links: LinkSpec) -> Self {
        self.links = links;
        self
    }

    /// Enables live observability: every service instance records its QoS
    /// histograms and traffic counters into `registry` (the caller keeps a
    /// clone to snapshot or export at any time), and protocol events are
    /// traced into per-shard rings.
    pub fn with_observability(mut self, registry: Registry) -> Self {
        self.observability = Some(registry);
        self
    }

    /// Replaces the per-shard trace-ring capacity (default 4096 events).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// Aggregate wakeup counters of a running [`Cluster`]'s shard workers —
/// the observable for "workers sleep exactly to the next deadline".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Size of the shard worker pool.
    pub workers: usize,
    /// Times any worker returned from its mailbox wait.
    pub wakeups: u64,
    /// Wakeups that found nothing to do: no command, no message, no due
    /// timer. With push-mode transports these only come from deadline
    /// rounding races, so the rate should be near zero.
    pub idle_wakeups: u64,
}

enum Command {
    Join {
        group: GroupId,
        config: JoinConfig,
        reply: Sender<ProcessId>,
    },
    Leave {
        group: GroupId,
        process: ProcessId,
        reply: Sender<bool>,
    },
    QueryLeader {
        group: GroupId,
        reply: Sender<Option<ProcessId>>,
    },
    InstallApp {
        app: Box<dyn FencedApp>,
        reply: Sender<()>,
    },
    QueryLease {
        group: GroupId,
        reply: Sender<Option<LeaderLease>>,
    },
}

/// One shard's inbound side: the command queue [`ClusterHandle`]s feed and
/// the mailbox transports deliver into, sharing one condvar.
struct ShardInbox {
    commands: Mutex<VecDeque<(NodeId, Command)>>,
    mail: Mailbox<(NodeId, Incoming<ServiceMessage>)>,
}

impl ShardInbox {
    fn new() -> Self {
        ShardInbox {
            commands: Mutex::new(VecDeque::new()),
            mail: Mailbox::new(),
        }
    }

    fn wake(&self) {
        self.mail.sender().wake();
    }

    /// Enqueues a command unless `shutdown` is already set. The flag is
    /// checked under the queue lock — the same lock the cluster's `Drop`
    /// drains the queue under *after* setting the flag — so a submission
    /// either reaches a live queue (and is answered, or drained with its
    /// reply channel dropped) or is refused outright; it can never strand
    /// a caller on the full reply timeout.
    fn submit(&self, shutdown: &AtomicBool, node: NodeId, command: Command) -> bool {
        {
            let mut commands = self.commands.lock().expect("shard command queue poisoned");
            if shutdown.load(Ordering::Relaxed) {
                return false;
            }
            commands.push_back((node, command));
        }
        self.wake();
        true
    }

    /// Drops everything still queued (and with it the reply senders, so
    /// blocked callers fail promptly). Called after the workers exited.
    fn drain_commands(&self) {
        self.commands
            .lock()
            .expect("shard command queue poisoned")
            .clear();
    }
}

/// Live wakeup counters of one shard worker. The fields are `sle-obs`
/// counter handles, so enabling observability binds the *same cells* into
/// the registry (`runtime.shard.<k>.wakeups`) — [`RuntimeStats`] and a
/// registry snapshot are two views of one account.
#[derive(Default)]
struct ShardStats {
    wakeups: Counter,
    idle_wakeups: Counter,
}

/// Per-node crash flags, shared between the application-facing [`Cluster`]
/// and the shard workers.
struct CrashFlags(Vec<AtomicBool>);

impl CrashFlags {
    fn new(n: usize) -> Self {
        CrashFlags((0..n).map(|_| AtomicBool::new(false)).collect())
    }

    fn set(&self, node: NodeId, crashed: bool) -> bool {
        match self.0.get(node.index()) {
            Some(flag) => {
                flag.store(crashed, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn get(&self, node: NodeId) -> bool {
        self.0
            .get(node.index())
            .map(|flag| flag.load(Ordering::Relaxed))
            .unwrap_or(false)
    }
}

/// A handle to one running service instance of a [`Cluster`].
#[derive(Clone)]
pub struct ClusterHandle {
    node: NodeId,
    inbox: Arc<ShardInbox>,
    shutdown: Arc<AtomicBool>,
}

impl ClusterHandle {
    /// The node this handle talks to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers a new process on this node and joins it to `group`.
    ///
    /// Returns `None` if the node has shut down.
    pub fn join(&self, group: GroupId, config: JoinConfig) -> Option<ProcessId> {
        let (tx, rx) = channel();
        let command = Command::Join {
            group,
            config,
            reply: tx,
        };
        if !self.inbox.submit(&self.shutdown, self.node, command) {
            return None;
        }
        rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// Removes `process` from `group`. Returns whether the leave succeeded.
    pub fn leave(&self, group: GroupId, process: ProcessId) -> bool {
        let (tx, rx) = channel();
        let command = Command::Leave {
            group,
            process,
            reply: tx,
        };
        if !self.inbox.submit(&self.shutdown, self.node, command) {
            return false;
        }
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or(false)
    }

    /// Queries this node's current view of the leader of `group`.
    pub fn leader_of(&self, group: GroupId) -> Option<ProcessId> {
        let (tx, rx) = channel();
        let command = Command::QueryLeader { group, reply: tx };
        if !self.inbox.submit(&self.shutdown, self.node, command) {
            return None;
        }
        rx.recv_timeout(Duration::from_secs(5)).ok().flatten()
    }

    /// Installs a fenced application on this node, enabling the client tier:
    /// the node serves `ClientRequest`s while it leads under a valid lease
    /// and broadcasts `LeaseGrant`s alongside its ALIVEs (see `docs/APP.md`).
    ///
    /// Returns whether the installation was applied (false if the node has
    /// shut down).
    pub fn install_app(&self, app: Box<dyn FencedApp>) -> bool {
        let (tx, rx) = channel();
        let command = Command::InstallApp { app, reply: tx };
        if !self.inbox.submit(&self.shutdown, self.node, command) {
            return false;
        }
        rx.recv_timeout(Duration::from_secs(5)).is_ok()
    }

    /// The lease this node currently holds as leader of `group`, if any.
    pub fn lease_of(&self, group: GroupId) -> Option<LeaderLease> {
        let (tx, rx) = channel();
        let command = Command::QueryLease { group, reply: tx };
        if !self.inbox.submit(&self.shutdown, self.node, command) {
            return None;
        }
        rx.recv_timeout(Duration::from_secs(5)).ok().flatten()
    }
}

/// One service node resident on a shard.
struct Resident<E> {
    id: NodeId,
    service: ServiceNode,
    endpoint: E,
    /// Whether the endpoint delivers straight into the shard mailbox; if
    /// not, the worker polls `try_recv` on the `PULL_POLL` cadence.
    push_mode: bool,
    /// The crash flag as of the worker's last scan, to detect transitions.
    crashed_seen: bool,
    /// Timers that came due while the node was crashed. The legacy runtime
    /// kept a crashed node's timers armed and fired them all on recovery;
    /// the wheel pops them regardless, so they are parked here and fired
    /// when the node recovers.
    frozen: Vec<TimerTag>,
}

/// The per-worker state of one shard.
struct ShardRuntime<E> {
    start: Instant,
    residents: Vec<Resident<E>>,
    /// Dense resident lookup: `index[node.index()]` is the position of the
    /// node's `Resident` in `residents`, or `u32::MAX` for nodes hosted on
    /// other shards. Node ids are numbered densely by `Cluster::start`, so
    /// a direct array load replaces the hash-and-probe this map used to
    /// cost on every message, timer and command dispatch.
    index: Vec<u32>,
    wheel: TimerWheel<(NodeId, TimerTag)>,
    inbox: Arc<ShardInbox>,
    events: Sender<ClusterEvent>,
    crashed: Arc<CrashFlags>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ShardStats>,
    any_pull: bool,
}

impl<E: MessageEndpoint<ServiceMessage>> ShardRuntime<E> {
    fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    /// The position of `node`'s resident on this shard, if it lives here.
    #[inline]
    fn resident_idx(&self, node: NodeId) -> Option<usize> {
        match self.index.get(node.index()) {
            Some(&idx) if idx != u32::MAX => Some(idx as usize),
            _ => None,
        }
    }

    fn apply_effects(&mut self, idx: usize, effects: Vec<Effect<ServiceMessage, ServiceEvent>>) {
        let id = self.residents[idx].id;
        for effect in effects {
            match effect {
                // Send failures are tolerable for a best-effort datagram
                // protocol: to the state machine they are the network
                // dropping a message. Transports are responsible for making
                // the one *deterministic* failure observable (an
                // unencodable-on-this-wire message — counted by sle-udp's
                // UdpStats::send_unencodable).
                Effect::Send { to, msg } => {
                    let _ = self.residents[idx].endpoint.send(to, msg);
                }
                Effect::SetTimer { tag, at } => {
                    self.wheel.schedule((id, tag), at);
                }
                Effect::CancelTimer { tag } => {
                    self.wheel.cancel(&(id, tag));
                }
                Effect::Emit(event) => {
                    let _ = self.events.send(ClusterEvent { node: id, event });
                }
            }
        }
    }

    fn start_node(&mut self, idx: usize) {
        let id = self.residents[idx].id;
        let mut ctx = ServiceContext::new(self.now(), id, 0);
        self.residents[idx].service.on_start(&mut ctx);
        let effects = ctx.into_effects();
        self.apply_effects(idx, effects);
    }

    fn dispatch_message(&mut self, node: NodeId, incoming: Incoming<ServiceMessage>) {
        let Some(idx) = self.resident_idx(node) else {
            return;
        };
        // Dispatch consults the worker's own crash snapshot (`crashed_seen`,
        // maintained by `scan_crash_transitions`), never the live flag:
        // freezing and un-freezing must share one consistent view, or a
        // crash+recover flap between two scans could strand frozen timers
        // forever. A flag flip simply takes effect at the next scan.
        if self.residents[idx].crashed_seen {
            // A "crashed" node drops traffic — parked, not polled.
            return;
        }
        let mut ctx = ServiceContext::new(self.now(), node, 0);
        self.residents[idx]
            .service
            .on_message(incoming.from, incoming.msg, &mut ctx);
        let effects = ctx.into_effects();
        self.apply_effects(idx, effects);
    }

    fn dispatch_timer(&mut self, node: NodeId, tag: TimerTag) {
        let Some(idx) = self.resident_idx(node) else {
            return;
        };
        // Same snapshot rule as `dispatch_message`.
        if self.residents[idx].crashed_seen {
            let frozen = &mut self.residents[idx].frozen;
            if !frozen.contains(&tag) {
                frozen.push(tag);
            }
            return;
        }
        let mut ctx = ServiceContext::new(self.now(), node, 0);
        self.residents[idx].service.on_timer(tag, &mut ctx);
        let effects = ctx.into_effects();
        self.apply_effects(idx, effects);
    }

    fn handle_command(&mut self, node: NodeId, command: Command) {
        let Some(idx) = self.resident_idx(node) else {
            return;
        };
        match command {
            Command::Join {
                group,
                config,
                reply,
            } => {
                let process = self.residents[idx].service.register_process();
                let mut ctx = ServiceContext::new(self.now(), node, 0);
                let _ = self.residents[idx]
                    .service
                    .join_group(process, group, config, &mut ctx);
                let effects = ctx.into_effects();
                self.apply_effects(idx, effects);
                let _ = reply.send(process);
            }
            Command::Leave {
                group,
                process,
                reply,
            } => {
                let mut ctx = ServiceContext::new(self.now(), node, 0);
                let ok = self.residents[idx]
                    .service
                    .leave_group(process, group, &mut ctx)
                    .is_ok();
                let effects = ctx.into_effects();
                self.apply_effects(idx, effects);
                let _ = reply.send(ok);
            }
            Command::QueryLeader { group, reply } => {
                let _ = reply.send(self.residents[idx].service.leader_of(group));
            }
            Command::InstallApp { app, reply } => {
                self.residents[idx].service.install_app(app);
                let _ = reply.send(());
            }
            Command::QueryLease { group, reply } => {
                let _ = reply.send(self.residents[idx].service.lease_of(group));
            }
        }
    }

    /// Detects crash-flag transitions. On recovery, fires the timers that
    /// came due while the node was parked (they are all overdue, exactly as
    /// they would have been under the legacy one-thread-per-node driver).
    fn scan_crash_transitions(&mut self) -> bool {
        let mut did_work = false;
        for idx in 0..self.residents.len() {
            let id = self.residents[idx].id;
            let crashed_now = self.crashed.get(id);
            if crashed_now == self.residents[idx].crashed_seen {
                continue;
            }
            self.residents[idx].crashed_seen = crashed_now;
            if !crashed_now {
                did_work = true;
                let frozen = std::mem::take(&mut self.residents[idx].frozen);
                for tag in frozen {
                    self.dispatch_timer(id, tag);
                }
            }
        }
        did_work
    }

    /// Drains and processes everything actionable right now: commands,
    /// crash transitions, delivered messages, due timers. Returns whether
    /// anything was done.
    fn process_all(&mut self, mail: &mut Vec<(NodeId, Incoming<ServiceMessage>)>) -> bool {
        let mut did_work = false;
        // Commands first: application calls must not starve behind traffic.
        loop {
            let next = self
                .inbox
                .commands
                .lock()
                .expect("shard command queue poisoned")
                .pop_front();
            let Some((node, command)) = next else {
                break;
            };
            did_work = true;
            self.handle_command(node, command);
        }
        did_work |= self.scan_crash_transitions();
        for (node, incoming) in mail.drain(..) {
            did_work = true;
            self.dispatch_message(node, incoming);
        }
        if self.any_pull {
            for idx in 0..self.residents.len() {
                if self.residents[idx].push_mode {
                    continue;
                }
                let node = self.residents[idx].id;
                while let Some(incoming) = self.residents[idx].endpoint.try_recv() {
                    did_work = true;
                    self.dispatch_message(node, incoming);
                }
            }
        }
        loop {
            let now = self.now();
            let Some((_, (node, tag))) = self.wheel.pop_due(now) else {
                break;
            };
            did_work = true;
            self.dispatch_timer(node, tag);
        }
        did_work
    }

    /// Flushes transports that coalesce sends
    /// ([`MessageEndpoint::flush_sends`]): the end of a productive
    /// processing round is the natural batch boundary, so everything the
    /// shard's residents said this round — to any one destination — can
    /// share datagrams without adding latency beyond the round itself.
    /// Write-through transports make this a no-op per resident.
    fn flush_endpoints(&self) {
        for resident in &self.residents {
            resident.endpoint.flush_sends();
        }
    }

    fn run(mut self) {
        for idx in 0..self.residents.len() {
            self.start_node(idx);
        }
        let mut mail: Vec<(NodeId, Incoming<ServiceMessage>)> = Vec::new();
        self.process_all(&mut mail);
        // The start-up round always talks (HELLOs, joins).
        self.flush_endpoints();
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                // Coalescing transports may still hold sends batched during
                // the last productive round (or handed to them by a resident
                // that observed the shutdown flag mid-round): flush so no
                // datagram is stranded in a pending buffer on exit.
                self.flush_endpoints();
                return;
            }
            // Sleep exactly until the wheel's next deadline (or forever, if
            // no timer is armed) — a push or a wake ends the wait early.
            let mut deadline = self
                .wheel
                .next_deadline()
                .map(|at| self.start + Duration::from_nanos(at.as_nanos()));
            if self.any_pull {
                let poll = Instant::now() + PULL_POLL;
                deadline = Some(deadline.map_or(poll, |d| d.min(poll)));
            }
            let woken = self.inbox.mail.wait_until(deadline, &mut mail);
            self.stats.wakeups.inc();
            let did_work = self.process_all(&mut mail);
            if did_work {
                self.flush_endpoints();
            } else if !woken {
                self.stats.idle_wakeups.inc();
            }
        }
    }
}

/// A real-time deployment of the leader-election service: a fixed pool of
/// shard workers driving one [`ServiceNode`] per endpoint, connected by any
/// [`MessageEndpoint`] transport (in-memory mesh by default, real UDP
/// sockets via `sle-udp`).
pub struct Cluster {
    handles: Vec<ClusterHandle>,
    threads: Vec<JoinHandle<()>>,
    events: Receiver<ClusterEvent>,
    crashed: Arc<CrashFlags>,
    shutdown: Arc<AtomicBool>,
    inboxes: Vec<Arc<ShardInbox>>,
    shard_of: Vec<usize>,
    stats: Vec<Arc<ShardStats>>,
    obs: Option<ClusterObs>,
}

/// The cluster-level observability state, present when
/// [`ClusterConfig::with_observability`] was used.
struct ClusterObs {
    registry: Registry,
    /// One trace ring per shard worker; residents of a shard share it.
    rings: Vec<TraceRing>,
    /// Stamps control-plane trace events (crash/recover) on the same
    /// timeline the shard workers run their timers on.
    clock: WallClock,
}

impl Cluster {
    /// Starts `n` service instances running `algorithm` over perfect links.
    pub fn start(n: usize, algorithm: ElectorKind) -> Self {
        Self::start_with_config(n, ClusterConfig::new(algorithm))
    }

    /// Starts `n` service instances whose links follow `links` (losses are
    /// applied inside the in-memory mesh).
    pub fn start_with_links(n: usize, algorithm: ElectorKind, links: LinkSpec) -> Self {
        Self::start_with_config(n, ClusterConfig::new(algorithm).with_links(links))
    }

    /// Starts `n` service instances on an in-memory mesh, fully configured:
    /// algorithm, worker pool size, HELLO interval, mesh links and seed.
    pub fn start_with_config(n: usize, config: ClusterConfig) -> Self {
        let mut mesh: InMemoryMesh<ServiceMessage> =
            InMemoryMesh::with_links(n, config.links, config.mesh_seed);
        let endpoints: Vec<_> = (0..n)
            .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint taken"))
            .collect();
        Self::start_endpoints_with_config(endpoints, config)
    }

    /// Starts one service instance per endpoint over whatever transport the
    /// endpoints implement, with the historical defaults (one worker per
    /// node, 200 ms HELLO interval).
    ///
    /// The endpoints' node identities must be the contiguous range
    /// `0..endpoints.len()` in order (the shape every deployment in this
    /// workspace uses); the peer set of every instance is the full set of
    /// endpoint identities.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint identities are not `0, 1, …, n-1` in order.
    pub fn start_with_endpoints<E>(endpoints: Vec<E>, algorithm: ElectorKind) -> Self
    where
        E: MessageEndpoint<ServiceMessage> + Send + 'static,
    {
        Self::start_endpoints_with_config(endpoints, ClusterConfig::new(algorithm))
    }

    /// Starts one service instance per endpoint, fully configured. Every
    /// instance's peer set is the full mesh of endpoint identities.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint identities are not `0, 1, …, n-1` in order.
    pub fn start_endpoints_with_config<E>(endpoints: Vec<E>, config: ClusterConfig) -> Self
    where
        E: MessageEndpoint<ServiceMessage> + Send + 'static,
    {
        let n = endpoints.len();
        let service_configs = (0..n)
            .map(|i| {
                ServiceConfig::full_mesh(NodeId(i as u32), n, config.algorithm)
                    .with_hello_interval(config.hello_interval)
            })
            .collect();
        Self::start_with_service_configs(endpoints, service_configs, &config)
    }

    /// The most general constructor: one service instance per endpoint,
    /// each with its own explicit [`ServiceConfig`] (peer sets, auto-joins,
    /// membership timeouts — the surface large deployments with restricted
    /// gossip topologies need), on the worker pool `options` selects.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint identities are not `0, 1, …, n-1` in order,
    /// or `configs` does not match them one-to-one.
    pub fn start_with_service_configs<E>(
        endpoints: Vec<E>,
        configs: Vec<ServiceConfig>,
        options: &ClusterConfig,
    ) -> Self
    where
        E: MessageEndpoint<ServiceMessage> + Send + 'static,
    {
        let n = endpoints.len();
        assert_eq!(configs.len(), n, "one ServiceConfig per endpoint");
        for (i, endpoint) in endpoints.iter().enumerate() {
            assert_eq!(
                endpoint.node(),
                NodeId(i as u32),
                "endpoint identities must be 0..n in order"
            );
        }
        for (i, config) in configs.iter().enumerate() {
            assert_eq!(
                config.node,
                NodeId(i as u32),
                "service config identities must be 0..n in order"
            );
        }
        let workers = options.workers.unwrap_or(n).clamp(1, n.max(1));
        let (event_tx, event_rx) = channel();
        let crashed = Arc::new(CrashFlags::new(n));
        let shutdown = Arc::new(AtomicBool::new(false));
        let start = Instant::now();

        let inboxes: Vec<Arc<ShardInbox>> =
            (0..workers).map(|_| Arc::new(ShardInbox::new())).collect();
        let stats: Vec<Arc<ShardStats>> = (0..workers)
            .map(|_| Arc::new(ShardStats::default()))
            .collect();
        let obs = options.observability.as_ref().map(|registry| {
            for (k, shard) in stats.iter().enumerate() {
                registry.bind_counter(&format!("runtime.shard.{k}.wakeups"), &shard.wakeups);
                registry.bind_counter(
                    &format!("runtime.shard.{k}.idle_wakeups"),
                    &shard.idle_wakeups,
                );
            }
            registry.gauge("runtime.workers").set(workers as i64);
            registry.gauge("runtime.nodes").set(n as i64);
            ClusterObs {
                registry: registry.clone(),
                rings: (0..workers)
                    .map(|_| TraceRing::new(options.trace_capacity))
                    .collect(),
                clock: WallClock::from_start(start),
            }
        });
        let mut members: Vec<Vec<Resident<E>>> = (0..workers).map(|_| Vec::new()).collect();
        let mut shard_of = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);

        for (i, (endpoint, config)) in endpoints.into_iter().zip(configs).enumerate() {
            let id = NodeId(i as u32);
            let shard = i % workers;
            shard_of.push(shard);
            let push_mode = endpoint.set_delivery_sink(inboxes[shard].mail.sender());
            let mut service = ServiceNode::new(config);
            if let Some(obs) = &obs {
                service.set_instruments(NodeInstruments::new(
                    &obs.registry,
                    obs.rings[shard].clone(),
                    id,
                ));
            }
            members[shard].push(Resident {
                id,
                service,
                endpoint,
                push_mode,
                crashed_seen: false,
                frozen: Vec::new(),
            });
            handles.push(ClusterHandle {
                node: id,
                inbox: Arc::clone(&inboxes[shard]),
                shutdown: Arc::clone(&shutdown),
            });
        }

        let threads = members
            .into_iter()
            .enumerate()
            .map(|(k, residents)| {
                let mut index = vec![
                    u32::MAX;
                    residents
                        .iter()
                        .map(|r| r.id.index() + 1)
                        .max()
                        .unwrap_or(0)
                ];
                for (idx, resident) in residents.iter().enumerate() {
                    index[resident.id.index()] = idx as u32;
                }
                let any_pull = residents.iter().any(|resident| !resident.push_mode);
                let runtime = ShardRuntime {
                    start,
                    residents,
                    index,
                    wheel: TimerWheel::new(),
                    inbox: Arc::clone(&inboxes[k]),
                    events: event_tx.clone(),
                    crashed: Arc::clone(&crashed),
                    shutdown: Arc::clone(&shutdown),
                    stats: Arc::clone(&stats[k]),
                    any_pull,
                };
                std::thread::Builder::new()
                    .name(format!("sle-shard-{k}"))
                    .spawn(move || runtime.run())
                    .expect("spawn shard worker")
            })
            .collect();

        Cluster {
            handles,
            threads,
            events: event_rx,
            crashed,
            shutdown,
            inboxes,
            shard_of,
            stats,
            obs,
        }
    }

    /// The live metrics registry, when the cluster was started with
    /// [`ClusterConfig::with_observability`]. The registry can be
    /// snapshotted and exported at any time while the cluster runs.
    pub fn obs_registry(&self) -> Option<&Registry> {
        self.obs.as_ref().map(|obs| &obs.registry)
    }

    /// Drains the per-shard protocol-event trace rings into one merged,
    /// time-ordered trace (plus the total number of events lost to ring
    /// overflow). Returns an empty drain when observability is off.
    pub fn drain_trace(&self) -> TraceDrain {
        let Some(obs) = &self.obs else {
            return TraceDrain::default();
        };
        let mut merged = TraceDrain::default();
        for ring in &obs.rings {
            let drain = ring.drain();
            merged.dropped += drain.dropped;
            merged.events.extend(drain.events);
        }
        // Per-ring sequence numbers only order within a shard; the merged
        // view is ordered by timestamp (ties broken by node then seq).
        merged.events.sort_by_key(|r| (r.at, r.node.0, r.seq));
        merged
    }

    /// Number of service instances.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Size of the shard worker pool (the cluster's thread count, excluding
    /// whatever reader threads the transport runs).
    pub fn workers(&self) -> usize {
        self.inboxes.len()
    }

    /// Aggregate wakeup counters across all shard workers.
    pub fn runtime_stats(&self) -> RuntimeStats {
        let mut stats = RuntimeStats {
            workers: self.inboxes.len(),
            ..RuntimeStats::default()
        };
        for shard in &self.stats {
            stats.wakeups += shard.wakeups.get();
            stats.idle_wakeups += shard.idle_wakeups.get();
        }
        stats
    }

    /// The handle for `node`.
    pub fn handle(&self, node: NodeId) -> Option<ClusterHandle> {
        self.handles.get(node.index()).cloned()
    }

    /// Receives the next leader-change event, waiting up to `timeout`.
    pub fn next_event(&self, timeout: Duration) -> Option<ClusterEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// The leader of `group` that every node (other than `exclude`)
    /// currently agrees on.
    ///
    /// Returns `None` while views differ, any polled node has no leader
    /// yet, or the agreed leader is hosted on `exclude` (the typical use of
    /// `exclude` is a node whose crash is being recovered from, so a stale
    /// view of it still in office does not count as agreement).
    pub fn agreed_leader(&self, group: GroupId, exclude: Option<NodeId>) -> Option<ProcessId> {
        let mut agreed: Option<ProcessId> = None;
        for handle in &self.handles {
            if Some(handle.node()) == exclude {
                continue;
            }
            let view = handle.leader_of(group)?;
            match agreed {
                None => agreed = Some(view),
                Some(leader) if leader == view => {}
                Some(_) => return None,
            }
        }
        agreed.filter(|leader| Some(leader.node) != exclude)
    }

    /// Like [`Cluster::agreed_leader`], but polling only `members` — the
    /// form multi-group deployments use, where each group spans a subset of
    /// the workstations.
    pub fn agreed_leader_among(&self, group: GroupId, members: &[NodeId]) -> Option<ProcessId> {
        let mut agreed: Option<ProcessId> = None;
        for &member in members {
            let view = self.handles.get(member.index())?.leader_of(group)?;
            match agreed {
                None => agreed = Some(view),
                Some(leader) if leader == view => {}
                Some(_) => return None,
            }
        }
        agreed
    }

    /// Polls [`Cluster::agreed_leader`] until the nodes agree or `timeout`
    /// expires — the standard way examples and tests wait for an election
    /// to settle in real time.
    ///
    /// # Errors
    ///
    /// On timeout, returns an [`AgreementTimeout`] carrying the last leader
    /// vote observed on every node (including `exclude`), so the caller can
    /// print exactly which nodes disagreed and about whom.
    pub fn await_agreement(
        &self,
        group: GroupId,
        exclude: Option<NodeId>,
        timeout: Duration,
    ) -> Result<ProcessId, AgreementTimeout> {
        let started = Instant::now();
        let deadline = started + timeout;
        loop {
            // A group whose every polled member is crashed can never reach a
            // *fresh* agreement — crashed nodes still answer `QueryLeader`
            // from their parked (stale) state, which would otherwise fake an
            // agreement here. Check this before consulting the views, and
            // fail promptly rather than waiting out the full timeout.
            let all_crashed = self
                .handles
                .iter()
                .filter(|handle| Some(handle.node()) != exclude)
                .all(|handle| self.crashed.get(handle.node()));
            if all_crashed {
                let votes = self
                    .handles
                    .iter()
                    .map(|handle| (handle.node(), handle.leader_of(group)))
                    .collect();
                return Err(AgreementTimeout {
                    group,
                    waited: started.elapsed(),
                    votes,
                });
            }
            if let Some(leader) = self.agreed_leader(group, exclude) {
                return Ok(leader);
            }
            if Instant::now() >= deadline {
                let votes = self
                    .handles
                    .iter()
                    .map(|handle| (handle.node(), handle.leader_of(group)))
                    .collect();
                return Err(AgreementTimeout {
                    group,
                    waited: started.elapsed(),
                    votes,
                });
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Simulates a crash of `node`: it stops handling messages and timers.
    pub fn crash(&self, node: NodeId) {
        if self.crashed.set(node, true) {
            if let Some(obs) = &self.obs {
                obs.rings[self.shard_of[node.index()]].push(
                    node,
                    obs.clock.now(),
                    ProtoEvent::Crashed,
                );
            }
            self.inboxes[self.shard_of[node.index()]].wake();
        }
    }

    /// Recovers a previously crashed node.
    ///
    /// Note: unlike the simulator, the in-process runtime keeps the node's
    /// state; for full crash-recovery semantics use the simulator.
    pub fn recover(&self, node: NodeId) {
        if self.crashed.set(node, false) {
            if let Some(obs) = &self.obs {
                obs.rings[self.shard_of[node.index()]].push(
                    node,
                    obs.clock.now(),
                    ProtoEvent::Recovered,
                );
            }
            self.inboxes[self.shard_of[node.index()]].wake();
        }
    }

    /// Shuts the cluster down, joining all shard workers.
    pub fn shutdown(self) {
        // Drop does the work; this method is the explicit, readable form.
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for inbox in &self.inboxes {
            inbox.wake();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        // Commands that raced the shutdown and were never answered: drop
        // them (and their reply senders) so blocked callers fail promptly
        // instead of waiting out their reply timeout.
        for inbox in &self.inboxes {
            inbox.drain_commands();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_elects_a_leader_in_real_time() {
        let cluster = Cluster::start(3, ElectorKind::OmegaLc);
        assert_eq!(cluster.len(), 3);
        assert!(!cluster.is_empty());
        assert_eq!(cluster.workers(), 3, "legacy shape: one worker per node");
        let group = GroupId(1);
        let mut processes = Vec::new();
        for i in 0..3u32 {
            let handle = cluster.handle(NodeId(i)).unwrap();
            processes.push(handle.join(group, JoinConfig::candidate()).unwrap());
        }
        // Wait until every node reports the same leader (or give up).
        let agreed = cluster.await_agreement(group, None, Duration::from_secs(10));
        assert!(
            agreed.is_ok(),
            "no agreement within 10 s of wall-clock time: {}",
            agreed.unwrap_err()
        );
        cluster.shutdown();
    }

    #[test]
    fn leader_crash_is_recovered_in_real_time() {
        let cluster = Cluster::start(3, ElectorKind::OmegaL);
        let group = GroupId(7);
        for i in 0..3u32 {
            cluster
                .handle(NodeId(i))
                .unwrap()
                .join(group, JoinConfig::candidate())
                .unwrap();
        }
        let leader = cluster
            .await_agreement(group, None, Duration::from_secs(10))
            .expect("initial leader");
        cluster.crash(leader.node);

        let new_leader = cluster.await_agreement(group, Some(leader.node), Duration::from_secs(15));
        let new_leader = new_leader.expect("no re-election within 15 s");
        assert_ne!(new_leader.node, leader.node);
        cluster.shutdown();
    }

    #[test]
    fn sharded_cluster_elects_and_reelects() {
        // Five nodes on two workers: same protocol, O(workers) threads.
        let config = ClusterConfig::new(ElectorKind::OmegaL).with_workers(2);
        let cluster = Cluster::start_with_config(5, config);
        assert_eq!(cluster.workers(), 2);
        let group = GroupId(3);
        for i in 0..5u32 {
            cluster
                .handle(NodeId(i))
                .unwrap()
                .join(group, JoinConfig::candidate())
                .unwrap();
        }
        let leader = cluster
            .await_agreement(group, None, Duration::from_secs(10))
            .expect("initial leader");
        cluster.crash(leader.node);
        let new_leader = cluster
            .await_agreement(group, Some(leader.node), Duration::from_secs(15))
            .expect("no re-election within 15 s");
        assert_ne!(new_leader.node, leader.node);

        // A recovered node resumes its timers (they were parked, not lost)
        // and rejoins the protocol: the *full* membership — recovered node
        // included — must reach agreement again.
        cluster.recover(leader.node);
        let settled = cluster
            .await_agreement(group, None, Duration::from_secs(20))
            .expect("no full agreement after recovery");
        let members: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        assert_eq!(cluster.agreed_leader_among(group, &members), Some(settled));
        cluster.shutdown();
    }

    #[test]
    fn cluster_with_crashed_nodes_shuts_down_promptly() {
        // Crashed nodes are parked on the shard mailbox (no drain/sleep
        // busy-loop), so shutdown must join instantly even when every node
        // is crashed.
        let config = ClusterConfig::new(ElectorKind::OmegaLc).with_workers(2);
        let cluster = Cluster::start_with_config(4, config);
        for i in 0..4u32 {
            cluster.crash(NodeId(i));
        }
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        cluster.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn cluster_config_builders() {
        let config = ClusterConfig::new(ElectorKind::OmegaL)
            .with_workers(0)
            .with_hello_interval(SimDuration::from_millis(150))
            .with_mesh_seed(9)
            .with_links(LinkSpec::perfect());
        assert_eq!(config.workers, Some(1), "worker pool is clamped to >= 1");
        assert_eq!(config.hello_interval, SimDuration::from_millis(150));
        assert_eq!(config.mesh_seed, 9);
        // More workers than nodes is capped at construction time.
        let cluster = Cluster::start_with_config(
            2,
            ClusterConfig::new(ElectorKind::OmegaLc).with_workers(16),
        );
        assert_eq!(cluster.workers(), 2);
        let stats = cluster.runtime_stats();
        assert_eq!(stats.workers, 2);
        cluster.shutdown();
    }
}
