//! A real-time runtime for the service.
//!
//! The paper deploys one service daemon per workstation; applications link a
//! shared library that talks to the local daemon. [`Cluster`] plays the role
//! of a deployment: it spawns one thread per service instance, connects them
//! through any [`MessageEndpoint`] transport, and exposes the service API —
//! join/leave groups, query the leader, subscribe to leader-change events —
//! through [`ClusterHandle`].
//!
//! Two transports implement the endpoint contract today: the in-memory mesh
//! of `sle-net` (the default, optionally lossy, used by most examples) and
//! the real-UDP sockets of `sle-udp` ([`Cluster::start_with_endpoints`] —
//! the paper's actual deployment shape, one datagram socket per
//! workstation). The protocol code is exactly the same [`ServiceNode`]
//! state machine the simulator runs; this module merely drives it with the
//! wall clock.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sle_election::ElectorKind;
use sle_net::link::LinkSpec;
use sle_net::transport::{InMemoryMesh, MessageEndpoint};
use sle_sim::actor::{Actor, Effect, NodeId, TimerTag};
use sle_sim::time::{SimDuration, SimInstant};

use crate::config::{JoinConfig, ServiceConfig};
use crate::error::AgreementTimeout;
use crate::events::ServiceEvent;
use crate::messages::ServiceMessage;
use crate::node::{ServiceContext, ServiceNode};
use crate::process::{GroupId, ProcessId};

/// A leader-change notification produced by some node of a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterEvent {
    /// The node on which the event was raised.
    pub node: NodeId,
    /// The event itself.
    pub event: ServiceEvent,
}

enum Command {
    Join {
        group: GroupId,
        config: JoinConfig,
        reply: Sender<ProcessId>,
    },
    Leave {
        group: GroupId,
        process: ProcessId,
        reply: Sender<bool>,
    },
    QueryLeader {
        group: GroupId,
        reply: Sender<Option<ProcessId>>,
    },
    Shutdown,
}

struct NodeRuntime {
    node: ServiceNode,
    id: NodeId,
    start: Instant,
    timers: std::collections::BTreeMap<TimerTag, SimInstant>,
    events: Sender<ClusterEvent>,
}

impl NodeRuntime {
    fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn apply_effects<E: MessageEndpoint<ServiceMessage>>(
        &mut self,
        effects: Vec<Effect<ServiceMessage, ServiceEvent>>,
        endpoint: &E,
    ) {
        for effect in effects {
            match effect {
                // Send failures are tolerable for a best-effort datagram
                // protocol: to the state machine they are the network
                // dropping a message. Transports are responsible for making
                // the one *deterministic* failure observable (an
                // unencodable-on-this-wire message — counted by sle-udp's
                // UdpStats::send_unencodable).
                Effect::Send { to, msg } => {
                    let _ = endpoint.send(to, msg);
                }
                Effect::SetTimer { tag, at } => {
                    self.timers.insert(tag, at);
                }
                Effect::CancelTimer { tag } => {
                    self.timers.remove(&tag);
                }
                Effect::Emit(event) => {
                    let _ = self.events.send(ClusterEvent {
                        node: self.id,
                        event,
                    });
                }
            }
        }
    }

    fn next_deadline(&self) -> Option<SimInstant> {
        self.timers.values().copied().min()
    }

    fn fire_due_timers<E: MessageEndpoint<ServiceMessage>>(&mut self, endpoint: &E) {
        loop {
            let now = self.now();
            let due: Vec<TimerTag> = self
                .timers
                .iter()
                .filter(|(_, &at)| at <= now)
                .map(|(&tag, _)| tag)
                .collect();
            if due.is_empty() {
                return;
            }
            for tag in due {
                self.timers.remove(&tag);
                let mut ctx = ServiceContext::new(self.now(), self.id, 0);
                self.node.on_timer(tag, &mut ctx);
                let effects = ctx.into_effects();
                self.apply_effects(effects, endpoint);
            }
        }
    }
}

/// A handle to one running service instance of a [`Cluster`].
#[derive(Clone)]
pub struct ClusterHandle {
    node: NodeId,
    commands: Sender<Command>,
}

impl ClusterHandle {
    /// The node this handle talks to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers a new process on this node and joins it to `group`.
    ///
    /// Returns `None` if the node has shut down.
    pub fn join(&self, group: GroupId, config: JoinConfig) -> Option<ProcessId> {
        let (tx, rx) = channel();
        self.commands
            .send(Command::Join {
                group,
                config,
                reply: tx,
            })
            .ok()?;
        rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// Removes `process` from `group`. Returns whether the leave succeeded.
    pub fn leave(&self, group: GroupId, process: ProcessId) -> bool {
        let (tx, rx) = channel();
        if self
            .commands
            .send(Command::Leave {
                group,
                process,
                reply: tx,
            })
            .is_err()
        {
            return false;
        }
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or(false)
    }

    /// Queries this node's current view of the leader of `group`.
    pub fn leader_of(&self, group: GroupId) -> Option<ProcessId> {
        let (tx, rx) = channel();
        self.commands
            .send(Command::QueryLeader { group, reply: tx })
            .ok()?;
        rx.recv_timeout(Duration::from_secs(5)).ok().flatten()
    }
}

/// A real-time deployment of the leader-election service: one thread per
/// workstation, connected by any [`MessageEndpoint`] transport (in-memory
/// mesh by default, real UDP sockets via `sle-udp`).
pub struct Cluster {
    handles: Vec<ClusterHandle>,
    threads: Vec<JoinHandle<()>>,
    events: Receiver<ClusterEvent>,
    command_senders: Vec<Sender<Command>>,
    crashed: Arc<Mutex<Vec<bool>>>,
}

impl Cluster {
    /// Starts `n` service instances running `algorithm` over perfect links.
    pub fn start(n: usize, algorithm: ElectorKind) -> Self {
        Self::start_with_links(n, algorithm, LinkSpec::perfect())
    }

    /// Starts `n` service instances whose links follow `links` (losses are
    /// applied inside the in-memory mesh).
    pub fn start_with_links(n: usize, algorithm: ElectorKind, links: LinkSpec) -> Self {
        let mut mesh: InMemoryMesh<ServiceMessage> = InMemoryMesh::with_links(n, links, 42);
        let endpoints: Vec<_> = (0..n)
            .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint taken"))
            .collect();
        Self::start_with_endpoints(endpoints, algorithm)
    }

    /// Starts one service instance per endpoint, each on its own thread,
    /// over whatever transport the endpoints implement.
    ///
    /// The endpoints' node identities must be the contiguous range
    /// `0..endpoints.len()` in order (the shape every deployment in this
    /// workspace uses); the peer set of every instance is the full set of
    /// endpoint identities.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint identities are not `0, 1, …, n-1` in order.
    pub fn start_with_endpoints<E>(endpoints: Vec<E>, algorithm: ElectorKind) -> Self
    where
        E: MessageEndpoint<ServiceMessage> + Send + 'static,
    {
        let n = endpoints.len();
        for (i, endpoint) in endpoints.iter().enumerate() {
            assert_eq!(
                endpoint.node(),
                NodeId(i as u32),
                "endpoint identities must be 0..n in order"
            );
        }
        let (event_tx, event_rx) = channel();
        let crashed = Arc::new(Mutex::new(vec![false; n]));
        let mut handles = Vec::with_capacity(n);
        let mut threads = Vec::with_capacity(n);
        let mut command_senders = Vec::with_capacity(n);

        for endpoint in endpoints {
            let id = endpoint.node();
            let (cmd_tx, cmd_rx) = channel::<Command>();
            let config = ServiceConfig::full_mesh(id, n, algorithm)
                .with_hello_interval(SimDuration::from_millis(200));
            let events = event_tx.clone();
            let crashed_flags = Arc::clone(&crashed);
            let thread = std::thread::spawn(move || {
                let mut runtime = NodeRuntime {
                    node: ServiceNode::new(config),
                    id,
                    start: Instant::now(),
                    timers: std::collections::BTreeMap::new(),
                    events,
                };
                let mut ctx = ServiceContext::new(runtime.now(), id, 0);
                runtime.node.on_start(&mut ctx);
                let effects = ctx.into_effects();
                runtime.apply_effects(effects, &endpoint);

                loop {
                    // Process any pending command.
                    while let Ok(command) = cmd_rx.try_recv() {
                        match command {
                            Command::Join {
                                group,
                                config,
                                reply,
                            } => {
                                let process = runtime.node.register_process();
                                let mut ctx = ServiceContext::new(runtime.now(), id, 0);
                                let _ = runtime.node.join_group(process, group, config, &mut ctx);
                                let effects = ctx.into_effects();
                                runtime.apply_effects(effects, &endpoint);
                                let _ = reply.send(process);
                            }
                            Command::Leave {
                                group,
                                process,
                                reply,
                            } => {
                                let mut ctx = ServiceContext::new(runtime.now(), id, 0);
                                let ok = runtime.node.leave_group(process, group, &mut ctx).is_ok();
                                let effects = ctx.into_effects();
                                runtime.apply_effects(effects, &endpoint);
                                let _ = reply.send(ok);
                            }
                            Command::QueryLeader { group, reply } => {
                                let _ = reply.send(runtime.node.leader_of(group));
                            }
                            Command::Shutdown => return,
                        }
                    }

                    if crashed_flags.lock().expect("crash flags poisoned")[id.index()] {
                        // A "crashed" node drops traffic and does nothing.
                        while endpoint.try_recv().is_some() {}
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }

                    runtime.fire_due_timers(&endpoint);

                    // Wait for the next message, but never past the next
                    // timer deadline (and poll commands at least every 10ms).
                    let wait = runtime
                        .next_deadline()
                        .map(|deadline| {
                            let now = runtime.now();
                            Duration::from_nanos(
                                deadline.saturating_since(now).as_nanos().min(10_000_000),
                            )
                        })
                        .unwrap_or(Duration::from_millis(10));
                    if let Some(incoming) = endpoint.recv_timeout(wait) {
                        let mut ctx = ServiceContext::new(runtime.now(), id, 0);
                        runtime
                            .node
                            .on_message(incoming.from, incoming.msg, &mut ctx);
                        let effects = ctx.into_effects();
                        runtime.apply_effects(effects, &endpoint);
                    }
                }
            });
            handles.push(ClusterHandle {
                node: id,
                commands: cmd_tx.clone(),
            });
            command_senders.push(cmd_tx);
            threads.push(thread);
        }

        Cluster {
            handles,
            threads,
            events: event_rx,
            command_senders,
            crashed,
        }
    }

    /// Number of service instances.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The handle for `node`.
    pub fn handle(&self, node: NodeId) -> Option<ClusterHandle> {
        self.handles.get(node.index()).cloned()
    }

    /// Receives the next leader-change event, waiting up to `timeout`.
    pub fn next_event(&self, timeout: Duration) -> Option<ClusterEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// The leader of `group` that every node (other than `exclude`)
    /// currently agrees on.
    ///
    /// Returns `None` while views differ, any polled node has no leader
    /// yet, or the agreed leader is hosted on `exclude` (the typical use of
    /// `exclude` is a node whose crash is being recovered from, so a stale
    /// view of it still in office does not count as agreement).
    pub fn agreed_leader(&self, group: GroupId, exclude: Option<NodeId>) -> Option<ProcessId> {
        let mut agreed: Option<ProcessId> = None;
        for handle in &self.handles {
            if Some(handle.node()) == exclude {
                continue;
            }
            let view = handle.leader_of(group)?;
            match agreed {
                None => agreed = Some(view),
                Some(leader) if leader == view => {}
                Some(_) => return None,
            }
        }
        agreed.filter(|leader| Some(leader.node) != exclude)
    }

    /// Polls [`Cluster::agreed_leader`] until the nodes agree or `timeout`
    /// expires — the standard way examples and tests wait for an election
    /// to settle in real time.
    ///
    /// # Errors
    ///
    /// On timeout, returns an [`AgreementTimeout`] carrying the last leader
    /// vote observed on every node (including `exclude`), so the caller can
    /// print exactly which nodes disagreed and about whom.
    pub fn await_agreement(
        &self,
        group: GroupId,
        exclude: Option<NodeId>,
        timeout: Duration,
    ) -> Result<ProcessId, AgreementTimeout> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(leader) = self.agreed_leader(group, exclude) {
                return Ok(leader);
            }
            if Instant::now() >= deadline {
                let votes = self
                    .handles
                    .iter()
                    .map(|handle| (handle.node(), handle.leader_of(group)))
                    .collect();
                return Err(AgreementTimeout {
                    group,
                    waited: timeout,
                    votes,
                });
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Simulates a crash of `node`: it stops handling messages and timers.
    pub fn crash(&self, node: NodeId) {
        if let Some(flag) = self
            .crashed
            .lock()
            .expect("crash flags poisoned")
            .get_mut(node.index())
        {
            *flag = true;
        }
    }

    /// Recovers a previously crashed node.
    ///
    /// Note: unlike the simulator, the in-process runtime keeps the node's
    /// state; for full crash-recovery semantics use the simulator.
    pub fn recover(&self, node: NodeId) {
        if let Some(flag) = self
            .crashed
            .lock()
            .expect("crash flags poisoned")
            .get_mut(node.index())
        {
            *flag = false;
        }
    }

    /// Shuts the cluster down, joining all threads.
    pub fn shutdown(mut self) {
        for sender in &self.command_senders {
            let _ = sender.send(Command::Shutdown);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_elects_a_leader_in_real_time() {
        let cluster = Cluster::start(3, ElectorKind::OmegaLc);
        assert_eq!(cluster.len(), 3);
        assert!(!cluster.is_empty());
        let group = GroupId(1);
        let mut processes = Vec::new();
        for i in 0..3u32 {
            let handle = cluster.handle(NodeId(i)).unwrap();
            processes.push(handle.join(group, JoinConfig::candidate()).unwrap());
        }
        // Wait until every node reports the same leader (or give up).
        let agreed = cluster.await_agreement(group, None, Duration::from_secs(10));
        assert!(
            agreed.is_ok(),
            "no agreement within 10 s of wall-clock time: {}",
            agreed.unwrap_err()
        );
        cluster.shutdown();
    }

    #[test]
    fn leader_crash_is_recovered_in_real_time() {
        let cluster = Cluster::start(3, ElectorKind::OmegaL);
        let group = GroupId(7);
        for i in 0..3u32 {
            cluster
                .handle(NodeId(i))
                .unwrap()
                .join(group, JoinConfig::candidate())
                .unwrap();
        }
        let leader = cluster
            .await_agreement(group, None, Duration::from_secs(10))
            .expect("initial leader");
        cluster.crash(leader.node);

        let new_leader = cluster.await_agreement(group, Some(leader.node), Duration::from_secs(15));
        let new_leader = new_leader.expect("no re-election within 15 s");
        assert_ne!(new_leader.node, leader.node);
        cluster.shutdown();
    }
}
