//! Live observability instruments for a service instance.
//!
//! A [`NodeInstruments`] bundle is attached to a [`ServiceNode`] with
//! [`ServiceNode::set_instruments`]: it carries a clone of the process-wide
//! [`Registry`], a clone of the (typically per-shard) [`TraceRing`], and the
//! cached metric handles the protocol hooks record into. All hooks take the
//! `SimInstant` their runtime hands the node (`ctx.now()`), so the same
//! instrumentation runs unchanged under virtual time and the wall clock —
//! the [`Clock`](sle_obs::clock::Clock) seam is only needed by components
//! outside an actor context (transports, cluster control operations).
//!
//! The recorded QoS quantities mirror the paper's §3 metrics:
//!
//! * `node.<n>.group.<g>.fd.detection_ns` — detection latency `T_D`: from a
//!   suspected peer's last heartbeat to the suspicion (histogram, ns),
//! * `node.<n>.group.<g>.fd.mistakes` — detector mistakes: suspicions later
//!   proven wrong by a revival (`T_MR`'s numerator; counter),
//! * `node.<n>.group.<g>.elect.election_ns` — election/recovery latency:
//!   from losing (or never having had) a leader to announcing a stable one
//!   (histogram, ns),
//! * `node.<n>.net.alive_interarrival_ns` — ALIVE inter-arrival jitter on
//!   incoming heartbeat datagrams (histogram, ns),
//! * `node.<n>.net.alive_payloads_sent` / `alive_datagrams_sent` — the
//!   paper's message-count figures, bound from the node's live counters.
//!
//! The full catalogue lives in `docs/OBSERVABILITY.md`.
//!
//! [`ServiceNode`]: crate::node::ServiceNode
//! [`ServiceNode::set_instruments`]: crate::node::ServiceNode::set_instruments

use sle_obs::{Counter, Histogram, ProtoEvent, Registry, TraceRing};
use sle_sim::time::SimInstant;
use sle_sim::NodeId;

use crate::process::{GroupId, ProcessId};

/// Per-group cached handles plus the election-episode state machine.
#[derive(Debug)]
struct GroupInstruments {
    detection: Histogram,
    election: Histogram,
    mistakes: Counter,
    /// When the current leaderless episode began (set at group creation and
    /// whenever the announced leader reverts to `None`); cleared — and the
    /// episode's duration recorded — when a leader is announced.
    election_started: Option<SimInstant>,
}

/// The instruments a [`ServiceNode`](crate::node::ServiceNode) records into.
#[derive(Debug)]
pub struct NodeInstruments {
    registry: Registry,
    trace: TraceRing,
    node: NodeId,
    alive_interarrival: Histogram,
    /// Last ALIVE arrival per peer, sorted by peer id (binary search: this
    /// is touched once per incoming heartbeat datagram).
    last_alive: Vec<(NodeId, SimInstant)>,
    /// Per-group instrument handles, sorted by group id.
    groups: Vec<(GroupId, GroupInstruments)>,
}

impl NodeInstruments {
    /// Creates the instrument bundle for `node`, registering the node-level
    /// metrics in `registry` and tracing into `trace`.
    pub fn new(registry: &Registry, trace: TraceRing, node: NodeId) -> Self {
        let alive_interarrival =
            registry.histogram(&format!("node.{}.net.alive_interarrival_ns", node.0));
        NodeInstruments {
            registry: registry.clone(),
            trace,
            node,
            alive_interarrival,
            last_alive: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// The registry this bundle records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace ring this bundle records into.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Binds a pre-existing counter handle under a node-scoped name — how
    /// the node's own live counters become registry views.
    pub(crate) fn bind_node_counter(&self, suffix: &str, counter: &Counter) {
        self.registry
            .bind_counter(&format!("node.{}.{}", self.node.0, suffix), counter);
    }

    fn group(&mut self, group: GroupId, now: SimInstant) -> &mut GroupInstruments {
        let i = match self.groups.binary_search_by_key(&group, |&(g, _)| g) {
            Ok(i) => i,
            Err(i) => {
                let prefix = format!("node.{}.group.{}", self.node.0, group.0);
                let instruments = GroupInstruments {
                    detection: self
                        .registry
                        .histogram(&format!("{prefix}.fd.detection_ns")),
                    election: self
                        .registry
                        .histogram(&format!("{prefix}.elect.election_ns")),
                    mistakes: self.registry.counter(&format!("{prefix}.fd.mistakes")),
                    election_started: Some(now),
                };
                self.groups.insert(i, (group, instruments));
                i
            }
        };
        &mut self.groups[i].1
    }

    /// A local process joined `group`.
    pub(crate) fn on_join(&mut self, group: GroupId, now: SimInstant) {
        self.group(group, now);
        self.trace
            .push(self.node, now, ProtoEvent::Join { group: group.0 });
    }

    /// A local process left `group`.
    pub(crate) fn on_leave(&mut self, group: GroupId, now: SimInstant) {
        self.trace
            .push(self.node, now, ProtoEvent::Leave { group: group.0 });
    }

    /// An incoming ALIVE datagram from `from` (before per-group dispatch).
    pub(crate) fn on_alive_datagram(&mut self, from: NodeId, now: SimInstant) {
        match self
            .last_alive
            .binary_search_by_key(&from, |&(peer, _)| peer)
        {
            Ok(i) => {
                let prev = std::mem::replace(&mut self.last_alive[i].1, now);
                self.alive_interarrival
                    .record_duration(now.saturating_since(prev));
            }
            Err(i) => self.last_alive.insert(i, (from, now)),
        }
    }

    /// The failure detector began suspecting a peer that was last heard
    /// `silent_for` ago — one detection-latency sample.
    pub(crate) fn on_detection(
        &mut self,
        group: GroupId,
        silent_for: sle_sim::time::SimDuration,
        now: SimInstant,
    ) {
        self.group(group, now).detection.record_duration(silent_for);
    }

    /// An accusation was sent to `accused` for `group`.
    pub(crate) fn on_accusation(&mut self, group: GroupId, accused: NodeId, now: SimInstant) {
        self.trace.push(
            self.node,
            now,
            ProtoEvent::Accusation {
                group: group.0,
                accused: accused.0,
            },
        );
    }

    /// A suspected peer revived: the suspicion was a detector mistake.
    pub(crate) fn on_mistake(&mut self, group: GroupId, now: SimInstant) {
        self.group(group, now).mistakes.inc();
    }

    /// The announced leader of `group` changed. Records the election
    /// latency (leaderless → leader) and traces the change.
    pub(crate) fn on_leader_change(
        &mut self,
        group: GroupId,
        leader: Option<ProcessId>,
        now: SimInstant,
    ) {
        let node = self.node;
        let g = self.group(group, now);
        match leader {
            Some(_) => {
                if let Some(started) = g.election_started.take() {
                    g.election.record_duration(now.saturating_since(started));
                }
            }
            None => {
                if g.election_started.is_none() {
                    g.election_started = Some(now);
                }
            }
        }
        self.trace.push(
            node,
            now,
            ProtoEvent::LeaderChange {
                group: group.0,
                leader: leader.map(|p| (p.node.0, p.local)),
            },
        );
    }

    /// A low-rate protocol timer fired (election grace periods — the
    /// per-heartbeat FD/ALIVE timers would flood the ring and are not
    /// traced).
    pub(crate) fn on_grace_timer(&mut self, now: SimInstant) {
        self.trace.push(
            self.node,
            now,
            ProtoEvent::TimerFired {
                kind: crate::node::GRACE_KIND as u32,
            },
        );
    }
}
