//! # sle-core — the stable leader-election service
//!
//! This crate is the primary contribution of the reproduced paper
//! (Schiper & Toueg, *"A Robust and Lightweight Stable Leader Election
//! Service for Dynamic Systems"*, DSN 2008): a fault-tolerant service that
//! elects and maintains an operational leader for any dynamically changing
//! group of application processes, with QoS control over failure detection,
//! leader stability, and a choice of election algorithms.
//!
//! The architecture mirrors the paper's Figure 2:
//!
//! * **registration and groups** — processes register with their local
//!   service instance ([`ServiceNode::register_process`]) and join/leave
//!   groups with per-join parameters ([`JoinConfig`]: candidate flag,
//!   notification style, failure-detection QoS),
//! * **Group Maintenance** — HELLO gossip plus failure-detector input
//!   maintains each group's membership ([`group`]),
//! * **Failure Detector** — the Chen et al. QoS detector from `sle-fd`,
//! * **Leader Election Algorithm** — Ωid, Ωlc or Ωl from `sle-election`,
//!   selected per service instance ([`ServiceConfig::algorithm`]).
//!
//! The protocol logic is a sans-io state machine ([`ServiceNode`]) that runs
//! identically under the discrete-event simulator (`sle-sim`, used by the
//! evaluation harness) and under the real-time runtime
//! ([`runtime::Cluster`]), which is generic over its transport
//! ([`sle_net::transport::MessageEndpoint`]): the in-memory mesh by
//! default, or real UDP sockets via the `sle-udp` crate — the paper's
//! daemon-per-workstation deployment (§2), speaking the datagram format of
//! `docs/WIRE.md`.
//!
//! ## Quick start (real time)
//!
//! ```no_run
//! use sle_core::prelude::*;
//! use sle_election::ElectorKind;
//! use std::time::Duration;
//!
//! // Three "workstations" running the S2 (Omega_lc) version of the service.
//! let cluster = Cluster::start(3, ElectorKind::OmegaLc);
//! let group = GroupId(1);
//! for i in 0..3u32 {
//!     cluster.handle(sle_sim::NodeId(i)).unwrap().join(group, JoinConfig::candidate());
//! }
//! std::thread::sleep(Duration::from_secs(2));
//! let leader = cluster.handle(sle_sim::NodeId(0)).unwrap().leader_of(group);
//! println!("group {group} is led by {leader:?}");
//! cluster.shutdown();
//! ```
//!
//! ## Quick start (simulated time)
//!
//! ```
//! use sle_core::prelude::*;
//! use sle_election::ElectorKind;
//! use sle_sim::prelude::*;
//!
//! let n = 4;
//! let group = GroupId(1);
//! let mut world: World<ServiceNode, PerfectMedium> = World::new(
//!     n,
//!     Box::new(move |node, _| {
//!         ServiceNode::new(
//!             ServiceConfig::full_mesh(node, n, ElectorKind::OmegaL)
//!                 .with_auto_join(group, JoinConfig::candidate()),
//!         )
//!     }),
//!     PerfectMedium,
//!     1,
//! );
//! let mut observer = NullObserver;
//! world.run_for(SimDuration::from_secs(5), &mut observer);
//! let leader = world.actor(NodeId(0)).unwrap().leader_of(group);
//! assert!(leader.is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod events;
pub mod group;
pub mod lease;
pub mod messages;
pub mod node;
pub mod obs;
pub mod process;
pub mod runtime;

/// Convenient re-exports of the items most users need.
pub mod prelude {
    pub use crate::config::{AutoJoin, JoinConfig, NotificationMode, ServiceConfig};
    pub use crate::error::{AgreementTimeout, ServiceError};
    pub use crate::events::ServiceEvent;
    pub use crate::lease::{FencedApp, FencingToken, LeaderLease, StaleToken};
    pub use crate::messages::{AliveHeader, GroupAlive, GroupAnnouncement, ServiceMessage};
    pub use crate::node::{ServiceContext, ServiceNode};
    pub use crate::process::{GroupId, ProcessId};
    pub use crate::runtime::{Cluster, ClusterConfig, ClusterEvent, ClusterHandle, RuntimeStats};
    pub use sle_adaptive::{TunerConfig, TuningPolicy};
}

pub use config::{AutoJoin, JoinConfig, NotificationMode, ServiceConfig};
pub use error::{AgreementTimeout, ServiceError};
pub use events::ServiceEvent;
pub use group::{GroupState, MemberEntry, MemberTable};
pub use lease::{FencedApp, FencingToken, LeaderLease, StaleToken};
pub use messages::{AliveHeader, GroupAlive, GroupAnnouncement, ServiceMessage};
pub use node::{ServiceContext, ServiceNode};
pub use obs::NodeInstruments;
pub use process::{GroupId, ProcessId};
pub use runtime::{Cluster, ClusterConfig, ClusterEvent, ClusterHandle, RuntimeStats};
pub use sle_adaptive::{TunerConfig, TuningPolicy};
