//! Service and group configuration.

use sle_adaptive::TuningPolicy;
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_sim::actor::NodeId;
use sle_sim::time::SimDuration;

use crate::process::GroupId;

/// How an application wants to learn about leader changes (paper Section 4:
/// "by an interrupt from the service, whenever the leader changes, or by
/// querying the service, whenever p wants to do so").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NotificationMode {
    /// The service raises a [`ServiceEvent::LeaderChanged`](crate::events::ServiceEvent)
    /// every time the group's leader changes.
    #[default]
    Interrupt,
    /// The application polls the service with
    /// [`ServiceNode::leader_of`](crate::node::ServiceNode::leader_of).
    Query,
}

/// Per-join parameters: what a process specifies when joining a group
/// (paper Section 4), extended with the tuning policy of the adaptive
/// subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinConfig {
    /// Whether the joining process is a candidate for the group leadership.
    pub candidate: bool,
    /// How the process wants to learn about leader changes.
    pub notification: NotificationMode,
    /// The QoS of the failure detection underlying this group's election.
    pub qos: QosSpec,
    /// Whether the failure-detection parameters are re-derived at run time
    /// from passive network measurements ([`TuningPolicy::Static`], the
    /// default, reproduces the paper's fixed per-join configuration).
    pub tuning: TuningPolicy,
}

impl JoinConfig {
    /// A candidate joining with the paper's default QoS, interrupt-style
    /// notifications and static (paper-faithful) tuning.
    pub fn candidate() -> Self {
        JoinConfig {
            candidate: true,
            notification: NotificationMode::Interrupt,
            qos: QosSpec::paper_default(),
            tuning: TuningPolicy::Static,
        }
    }

    /// A non-candidate (passive listener) joining with the paper's default
    /// QoS.
    pub fn listener() -> Self {
        JoinConfig {
            candidate: false,
            notification: NotificationMode::Interrupt,
            qos: QosSpec::paper_default(),
            tuning: TuningPolicy::Static,
        }
    }

    /// Replaces the QoS specification.
    pub fn with_qos(mut self, qos: QosSpec) -> Self {
        self.qos = qos;
        self
    }

    /// Replaces the notification mode.
    pub fn with_notification(mut self, notification: NotificationMode) -> Self {
        self.notification = notification;
        self
    }

    /// Replaces the tuning policy.
    pub fn with_tuning(mut self, tuning: TuningPolicy) -> Self {
        self.tuning = tuning;
        self
    }

    /// Enables adaptive tuning with its default configuration.
    pub fn with_adaptive_tuning(self) -> Self {
        self.with_tuning(TuningPolicy::adaptive())
    }
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig::candidate()
    }
}

/// A group membership to establish automatically when the service instance
/// starts (and re-establish after every recovery) — this is how the
/// experiments model application processes that immediately re-register and
/// re-join after their workstation restarts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoJoin {
    /// The group to join.
    pub group: GroupId,
    /// The join parameters.
    pub config: JoinConfig,
}

/// Configuration of one service instance (one per workstation).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// This workstation's identity.
    pub node: NodeId,
    /// All workstations participating in the service (the static peer list a
    /// deployment is configured with; groups are dynamic subsets of the
    /// processes running on these workstations).
    pub peers: Vec<NodeId>,
    /// The leader-election algorithm to run (the "version" of the service:
    /// S1, S2 or S3).
    pub algorithm: ElectorKind,
    /// How often HELLO membership announcements are sent.
    pub hello_interval: SimDuration,
    /// How long a member may stay silent (no HELLO) before it is dropped
    /// from the membership.
    pub membership_timeout: SimDuration,
    /// Group memberships established automatically at start-up.
    pub auto_joins: Vec<AutoJoin>,
}

impl ServiceConfig {
    /// Creates a configuration for `node` in a system of `peers`
    /// workstations, running `algorithm`.
    pub fn new(node: NodeId, peers: Vec<NodeId>, algorithm: ElectorKind) -> Self {
        ServiceConfig {
            node,
            peers,
            algorithm,
            hello_interval: SimDuration::from_millis(1000),
            membership_timeout: SimDuration::from_secs(5),
            auto_joins: Vec::new(),
        }
    }

    /// Convenience constructor for a full mesh of `n` workstations numbered
    /// `0..n`, as used by all the paper's experiments.
    pub fn full_mesh(node: NodeId, n: usize, algorithm: ElectorKind) -> Self {
        let peers = (0..n as u32).map(NodeId).collect();
        Self::new(node, peers, algorithm)
    }

    /// Adds an automatic group join performed at every (re)start.
    pub fn with_auto_join(mut self, group: GroupId, config: JoinConfig) -> Self {
        self.auto_joins.push(AutoJoin { group, config });
        self
    }

    /// Overrides the HELLO interval.
    pub fn with_hello_interval(mut self, interval: SimDuration) -> Self {
        self.hello_interval = interval;
        self
    }

    /// The peers other than this node.
    pub fn remote_peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.node;
        self.peers.iter().copied().filter(move |&p| p != me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_config_builders() {
        let c = JoinConfig::candidate();
        assert!(c.candidate);
        assert_eq!(c.notification, NotificationMode::Interrupt);
        assert_eq!(c.tuning, TuningPolicy::Static);
        assert!(matches!(
            JoinConfig::candidate().with_adaptive_tuning().tuning,
            TuningPolicy::Adaptive(_)
        ));
        let l = JoinConfig::listener().with_notification(NotificationMode::Query);
        assert!(!l.candidate);
        assert_eq!(l.notification, NotificationMode::Query);
        let q = QosSpec::paper_default_with_detection(SimDuration::from_millis(100));
        assert_eq!(JoinConfig::candidate().with_qos(q).qos, q);
        assert_eq!(JoinConfig::default(), JoinConfig::candidate());
        assert_eq!(NotificationMode::default(), NotificationMode::Interrupt);
    }

    #[test]
    fn full_mesh_lists_all_peers() {
        let config = ServiceConfig::full_mesh(NodeId(2), 4, ElectorKind::OmegaL);
        assert_eq!(config.peers.len(), 4);
        let remotes: Vec<NodeId> = config.remote_peers().collect();
        assert_eq!(remotes, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(config.algorithm, ElectorKind::OmegaL);
    }

    #[test]
    fn auto_join_and_hello_interval_builders() {
        let config = ServiceConfig::full_mesh(NodeId(0), 3, ElectorKind::OmegaLc)
            .with_auto_join(GroupId(1), JoinConfig::candidate())
            .with_hello_interval(SimDuration::from_millis(500));
        assert_eq!(config.auto_joins.len(), 1);
        assert_eq!(config.auto_joins[0].group, GroupId(1));
        assert_eq!(config.hello_interval, SimDuration::from_millis(500));
    }
}
