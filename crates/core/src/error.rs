//! Error types returned by the service API.

use crate::process::{GroupId, ProcessId};

/// Errors returned by the service's command interface (register / join /
/// leave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The process is not registered with this service instance.
    UnknownProcess(ProcessId),
    /// The process is registered on a different workstation.
    ForeignProcess(ProcessId),
    /// The process has not joined the group it tried to act on.
    NotJoined(ProcessId, GroupId),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownProcess(p) => {
                write!(
                    f,
                    "process {p} is not registered with this service instance"
                )
            }
            ServiceError::ForeignProcess(p) => {
                write!(f, "process {p} is registered on a different workstation")
            }
            ServiceError::NotJoined(p, g) => {
                write!(f, "process {p} has not joined group {g}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::actor::NodeId;

    #[test]
    fn display_messages() {
        let p = ProcessId::new(NodeId(1), 2);
        assert_eq!(
            ServiceError::UnknownProcess(p).to_string(),
            "process n1.p2 is not registered with this service instance"
        );
        assert_eq!(
            ServiceError::ForeignProcess(p).to_string(),
            "process n1.p2 is registered on a different workstation"
        );
        assert_eq!(
            ServiceError::NotJoined(p, GroupId(3)).to_string(),
            "process n1.p2 has not joined group g3"
        );
    }
}
