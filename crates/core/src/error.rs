//! Error types returned by the service API.

use std::time::Duration;

use sle_sim::actor::NodeId;

use crate::process::{GroupId, ProcessId};

/// Errors returned by the service's command interface (register / join /
/// leave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The process is not registered with this service instance.
    UnknownProcess(ProcessId),
    /// The process is registered on a different workstation.
    ForeignProcess(ProcessId),
    /// The process has not joined the group it tried to act on.
    NotJoined(ProcessId, GroupId),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownProcess(p) => {
                write!(
                    f,
                    "process {p} is not registered with this service instance"
                )
            }
            ServiceError::ForeignProcess(p) => {
                write!(f, "process {p} is registered on a different workstation")
            }
            ServiceError::NotJoined(p, g) => {
                write!(f, "process {p} has not joined group {g}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Timeout error returned by
/// [`Cluster::await_agreement`](crate::runtime::Cluster::await_agreement):
/// the nodes failed to converge on a common alive leader in time.
///
/// It carries the last leader vote observed on every node, so a failing
/// test or chaos reproducer prints *actionable* state — which nodes
/// disagreed, and about whom — instead of a bare `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreementTimeout {
    /// The group that failed to agree.
    pub group: GroupId,
    /// How long the caller waited before giving up.
    pub waited: Duration,
    /// The last leader view observed on each node, in node order (`None`
    /// means the node reported no leader at all).
    pub votes: Vec<(NodeId, Option<ProcessId>)>,
}

impl std::fmt::Display for AgreementTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no agreement on a leader of {} within {:.2}s; last votes:",
            self.group,
            self.waited.as_secs_f64()
        )?;
        if self.votes.is_empty() {
            return write!(f, " (none observed)");
        }
        for (index, (node, vote)) in self.votes.iter().enumerate() {
            let sep = if index == 0 { " " } else { ", " };
            match vote {
                Some(leader) => write!(f, "{sep}{node} -> {leader}")?,
                None => write!(f, "{sep}{node} -> (no leader)")?,
            }
        }
        Ok(())
    }
}

impl std::error::Error for AgreementTimeout {}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::actor::NodeId;

    #[test]
    fn display_messages() {
        let p = ProcessId::new(NodeId(1), 2);
        assert_eq!(
            ServiceError::UnknownProcess(p).to_string(),
            "process n1.p2 is not registered with this service instance"
        );
        assert_eq!(
            ServiceError::ForeignProcess(p).to_string(),
            "process n1.p2 is registered on a different workstation"
        );
        assert_eq!(
            ServiceError::NotJoined(p, GroupId(3)).to_string(),
            "process n1.p2 has not joined group g3"
        );
    }

    #[test]
    fn agreement_timeout_prints_per_node_votes() {
        let err = AgreementTimeout {
            group: GroupId(1),
            waited: Duration::from_secs(10),
            votes: vec![
                (NodeId(0), Some(ProcessId::new(NodeId(2), 0))),
                (NodeId(1), None),
                (NodeId(2), Some(ProcessId::new(NodeId(2), 0))),
            ],
        };
        assert_eq!(
            err.to_string(),
            "no agreement on a leader of g1 within 10.00s; last votes: \
             n0 -> n2.p0, n1 -> (no leader), n2 -> n2.p0"
        );
        let empty = AgreementTimeout {
            group: GroupId(9),
            waited: Duration::from_millis(500),
            votes: Vec::new(),
        };
        assert!(empty.to_string().ends_with("(none observed)"));
    }
}
