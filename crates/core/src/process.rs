//! Identifiers used by the leader-election service.
//!
//! A *workstation* (simulator node / runtime thread) runs one service
//! instance; *application processes* register with their local service
//! instance and join *groups*. The paper requires every process to register
//! with a unique identifier; here a [`ProcessId`] is the pair of the hosting
//! node and a node-local number, which makes identifiers unique by
//! construction.

use std::fmt;

use sle_sim::actor::NodeId;

/// Identifier of an application process registered with the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId {
    /// The workstation hosting the process.
    pub node: NodeId,
    /// The node-local process number assigned at registration.
    pub local: u32,
}

impl ProcessId {
    /// Creates a process identifier.
    pub fn new(node: NodeId, local: u32) -> Self {
        ProcessId { node, local }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.p{}", self.node, self.local)
    }
}

/// Identifier of a group of processes.
///
/// Groups are created implicitly: joining a group that no one has joined yet
/// brings it into existence, exactly as in the paper's dynamic-group model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GroupId {
    fn from(v: u32) -> Self {
        GroupId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let p = ProcessId::new(NodeId(3), 2);
        assert_eq!(p.to_string(), "n3.p2");
        assert_eq!(GroupId(7).to_string(), "g7");
        assert_eq!(GroupId::from(7u32), GroupId(7));
    }

    #[test]
    fn ordering_is_by_node_then_local() {
        let a = ProcessId::new(NodeId(1), 9);
        let b = ProcessId::new(NodeId(2), 0);
        let c = ProcessId::new(NodeId(1), 1);
        assert!(a < b);
        assert!(c < a);
    }
}
