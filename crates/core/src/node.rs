//! The per-workstation service instance.
//!
//! A [`ServiceNode`] is the sans-io heart of the leader-election service: it
//! combines the Group Maintenance module (HELLO gossip, membership), the
//! Failure Detector module (per-group [`sle_fd::FailureDetector`]s fed by
//! ALIVE messages) and the Leader Election Algorithm module (one
//! [`sle_election::AnyElector`] per group), exactly mirroring the architecture of the
//! paper's Figure 2. It implements [`sle_sim::Actor`], so the same code runs
//! under the discrete-event simulator (for the evaluation) and under the
//! real-time runtime in [`crate::runtime`] (for applications).

use sle_adaptive::Tuner;
use sle_election::{ElectorKind, ElectorOutput, LeaderElector};
use sle_fd::{FdParams, LivenessHandle, MonitorArena, Transition};
use sle_sim::actor::{Actor, Context, NodeId, TimerTag};
use sle_sim::time::{SimDuration, SimInstant};

use std::collections::BTreeMap;

use crate::config::{JoinConfig, ServiceConfig};
use crate::error::ServiceError;
use crate::events::ServiceEvent;
use crate::group::GroupState;
use crate::lease::{FencedApp, FencingToken, LeaderLease};
use crate::messages::{AliveHeader, GroupAlive, GroupAnnouncement, ServiceMessage};
use crate::obs::NodeInstruments;
use crate::process::{GroupId, ProcessId};

/// Timer used for periodic HELLO gossip and membership expiry.
const HELLO_TIMER: TimerTag = TimerTag(0);
/// Timer-tag namespace of the per-node ALIVE tick.
const ALIVE_KIND: u64 = 1;
/// Timer-tag namespace for per-group failure-detector deadlines.
const FD_KIND: u64 = 2;
/// Timer-tag namespace for the end of the self-election grace period.
pub(crate) const GRACE_KIND: u64 = 3;
/// Timer-tag namespace for periodic QoS re-derivation (adaptive tuning).
const TUNE_KIND: u64 = 4;

/// The single per-node ALIVE tick: it fires at the earliest `next_alive_at`
/// across all groups and fans out for every group that is due, however many
/// groups the node participates in. (Historically every group armed its own
/// timer here — O(groups) pending timers per node.)
const ALIVE_TIMER: TimerTag = TimerTag(ALIVE_KIND << 32);

/// Encoded-size budget for one batched ALIVE datagram. Stays safely under
/// `sle-wire`'s `MAX_DATAGRAM` (1400 bytes minus the frame header), so a
/// node in very many groups splits its fan-out into several datagrams
/// rather than producing one the transport must reject.
const MAX_ALIVE_BATCH_BYTES: usize = 1200;

fn fd_tag(group: GroupId) -> TimerTag {
    TimerTag(FD_KIND << 32 | group.0 as u64)
}

fn grace_tag(group: GroupId) -> TimerTag {
    TimerTag(GRACE_KIND << 32 | group.0 as u64)
}

fn tune_tag(group: GroupId) -> TimerTag {
    TimerTag(TUNE_KIND << 32 | group.0 as u64)
}

/// Dense per-group storage: group ids are interned into `u32` slots on
/// first join, a sorted `(id, slot)` index maps ids to slots, and the
/// states live in a contiguous slot vector. Lookups are binary searches
/// over the index, iteration follows the index (ascending group id, so the
/// ALIVE fan-out and membership sweeps stay deterministic), and slots
/// vacated by `remove` are recycled through a free list.
#[derive(Debug, Default)]
struct GroupTable {
    index: Vec<(u32, u32)>,
    slots: Vec<Option<GroupState>>,
    free: Vec<u32>,
}

impl GroupTable {
    #[inline]
    fn find(&self, group: GroupId) -> Result<usize, usize> {
        self.index.binary_search_by_key(&group.0, |&(id, _)| id)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn get(&self, group: GroupId) -> Option<&GroupState> {
        let i = self.find(group).ok()?;
        self.slots[self.index[i].1 as usize].as_ref()
    }

    fn get_mut(&mut self, group: GroupId) -> Option<&mut GroupState> {
        match self.find(group) {
            Ok(i) => {
                let slot = self.index[i].1 as usize;
                self.slots[slot].as_mut()
            }
            Err(_) => None,
        }
    }

    fn get_or_insert_with(
        &mut self,
        group: GroupId,
        make: impl FnOnce() -> GroupState,
    ) -> &mut GroupState {
        let slot = match self.find(group) {
            Ok(i) => self.index[i].1 as usize,
            Err(i) => {
                let state = make();
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.slots[s as usize] = Some(state);
                        s as usize
                    }
                    None => {
                        self.slots.push(Some(state));
                        self.slots.len() - 1
                    }
                };
                self.index.insert(i, (group.0, slot as u32));
                slot
            }
        };
        self.slots[slot].as_mut().expect("indexed slot is live")
    }

    fn remove(&mut self, group: GroupId) -> Option<GroupState> {
        match self.find(group) {
            Ok(i) => {
                let (_, slot) = self.index.remove(i);
                self.free.push(slot);
                self.slots[slot as usize].take()
            }
            Err(_) => None,
        }
    }

    /// Group ids in ascending order.
    fn ids(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.index.iter().map(|&(id, _)| GroupId(id))
    }

    /// Group states in ascending group-id order.
    fn iter(&self) -> impl Iterator<Item = &GroupState> + '_ {
        self.index.iter().map(move |&(_, slot)| {
            self.slots[slot as usize]
                .as_ref()
                .expect("indexed slot is live")
        })
    }

    /// The `(id, slot)` pair at position `i` of the sorted index.
    fn pair(&self, i: usize) -> (GroupId, u32) {
        let (id, slot) = self.index[i];
        (GroupId(id), slot)
    }

    /// The state living in `slot` (which must be indexed).
    fn slot_mut(&mut self, slot: u32) -> &mut GroupState {
        self.slots[slot as usize]
            .as_mut()
            .expect("indexed slot is live")
    }
}

/// Node-level per-peer state, interned into dense `u32` slots on first
/// contact.
///
/// Entries are deliberately never removed. The sequence counter must
/// survive group churn (see the field comment on the counter below), and
/// the cached [`LivenessHandle`] turns the per-datagram arena lock of the
/// hot receive path into one binary search over this slab. Retention is
/// bounded by the workstation universe — destinations are configured
/// peers — not by churn.
#[derive(Debug)]
struct PeerEntry {
    /// Highest incarnation observed from the peer; `None` until the first
    /// incarnation-carrying message arrives.
    incarnation: Option<u64>,
    /// Next node-level ALIVE sequence number towards the peer: one
    /// heartbeat stream per peer link, whichever groups ride on it.
    ///
    /// Never reset: a receiver — even a freshly restarted one — may have
    /// already recorded a few of our high pre-reset sequence numbers, and
    /// a stream restarting at 0 then reads as catastrophic loss on its
    /// link estimator, cranking the requested heartbeat rate to the floor.
    node_seq: u64,
    /// Cached handle to the peer's shared liveness record in the
    /// workstation arena; keeps the hot path off the arena mutex.
    liveness: LivenessHandle,
}

#[derive(Debug, Default)]
struct PeerSlab {
    /// Sorted `(peer id, slot)` index into `entries`.
    index: Vec<(u32, u32)>,
    entries: Vec<PeerEntry>,
}

impl PeerSlab {
    /// The slot for `peer`, creating its entry (and its arena record) on
    /// first contact.
    fn intern(&mut self, peer: NodeId, arena: &MonitorArena) -> usize {
        match self.index.binary_search_by_key(&peer.0, |&(id, _)| id) {
            Ok(i) => self.index[i].1 as usize,
            Err(i) => {
                let slot = self.entries.len();
                self.entries.push(PeerEntry {
                    incarnation: None,
                    node_seq: 0,
                    liveness: arena.slot(peer),
                });
                self.index.insert(i, (peer.0, slot as u32));
                slot
            }
        }
    }
}

/// The context type used by the service.
pub type ServiceContext = Context<ServiceMessage, ServiceEvent>;

/// One leader-election service instance (one per workstation).
#[derive(Debug)]
pub struct ServiceNode {
    config: ServiceConfig,
    incarnation: u64,
    next_local_process: u32,
    registered: BTreeMap<u32, ProcessId>,
    /// Per-group state in dense slots, indexed by interned group id.
    groups: GroupTable,
    /// Node-level per-peer state (incarnation, heartbeat sequence, cached
    /// liveness handle) in dense slots, indexed by interned peer id.
    peers: PeerSlab,
    /// The workstation-wide liveness arena: one link estimate per peer,
    /// shared by every group's failure detector (paper Figure 2's single
    /// Failure Detector module per workstation).
    arena: MonitorArena,
    /// Reusable per-peer-slot ALIVE assembly buffers (parallel to the
    /// `peers` slots); drained by every tick, so steady-state fan-out
    /// allocates nothing beyond the outgoing messages themselves.
    alive_scratch: Vec<Vec<GroupAlive>>,
    /// `(peer id, peer slot)` pairs touched by the current ALIVE tick;
    /// sorted by id before flushing so datagrams leave in deterministic
    /// destination order.
    scratch_touched: Vec<(u32, u32)>,
    /// Groups found due on the current ALIVE tick (reused across ticks).
    due_scratch: Vec<GroupId>,
    /// How many current groups run an adaptive tuner; when zero (the
    /// default, paper-faithful configuration) the per-datagram tuner
    /// fan-out in `note_alive_datagram` is skipped entirely.
    adaptive_groups: usize,
    /// Per-group ALIVE payloads handed to the transport (batch entries
    /// count individually). A live counter handle so that attaching
    /// instruments makes it a registry view instead of a second account.
    alive_payloads_sent: sle_obs::Counter,
    /// ALIVE datagrams handed to the transport (a batch counts once).
    alive_datagrams_sent: sle_obs::Counter,
    /// Live QoS instruments and protocol trace, when attached by the
    /// driving runtime ([`ServiceNode::set_instruments`]). `None` — the
    /// default — costs one branch per instrumentation point.
    obs: Option<NodeInstruments>,
    /// The fenced state machine served while this node leads a group with a
    /// valid lease ([`ServiceNode::install_app`]).
    app: Option<Box<dyn FencedApp>>,
    /// Whether the ALIVE tick broadcasts `LeaseGrant`s for held leases.
    /// Enabled by [`ServiceNode::install_app`], so deployments without an
    /// application tier pay no extra traffic.
    lease_broadcast: bool,
    /// ACCUSE messages dropped because their epoch predates the elector's
    /// current one (a duplicated or delayed replay).
    stale_accusations_ignored: sle_obs::Counter,
    /// Leader leases minted (a new token taking effect).
    leases_minted: sle_obs::Counter,
    /// Lease renewals performed on the ALIVE tick.
    lease_renewals: sle_obs::Counter,
    /// Client requests applied by the installed app.
    requests_applied: sle_obs::Counter,
    /// Client requests the installed app rejected as stale-fenced.
    requests_rejected: sle_obs::Counter,
    /// Client requests answered with a redirect instead of being served.
    requests_redirected: sle_obs::Counter,
}

impl ServiceNode {
    /// Creates a service instance from its configuration.
    pub fn new(config: ServiceConfig) -> Self {
        ServiceNode {
            config,
            incarnation: 0,
            next_local_process: 0,
            registered: BTreeMap::new(),
            groups: GroupTable::default(),
            peers: PeerSlab::default(),
            arena: MonitorArena::new(),
            alive_scratch: Vec::new(),
            scratch_touched: Vec::new(),
            due_scratch: Vec::new(),
            adaptive_groups: 0,
            alive_payloads_sent: sle_obs::Counter::new(),
            alive_datagrams_sent: sle_obs::Counter::new(),
            obs: None,
            app: None,
            lease_broadcast: false,
            stale_accusations_ignored: sle_obs::Counter::new(),
            leases_minted: sle_obs::Counter::new(),
            lease_renewals: sle_obs::Counter::new(),
            requests_applied: sle_obs::Counter::new(),
            requests_rejected: sle_obs::Counter::new(),
            requests_redirected: sle_obs::Counter::new(),
        }
    }

    /// Attaches live observability instruments: QoS histograms recorded
    /// under this node's registry names, protocol events pushed into the
    /// given trace ring, and the node's own traffic counters bound into the
    /// registry as views. Runtimes call this right after construction;
    /// without it, every instrumentation point is a single `None` branch.
    pub fn set_instruments(&mut self, instruments: NodeInstruments) {
        instruments.bind_node_counter("net.alive_payloads_sent", &self.alive_payloads_sent);
        instruments.bind_node_counter("net.alive_datagrams_sent", &self.alive_datagrams_sent);
        instruments.bind_node_counter(
            "elect.stale_accusations_ignored",
            &self.stale_accusations_ignored,
        );
        instruments.bind_node_counter("app.leases_minted", &self.leases_minted);
        instruments.bind_node_counter("app.lease_renewals", &self.lease_renewals);
        instruments.bind_node_counter("app.requests_applied", &self.requests_applied);
        instruments.bind_node_counter("app.requests_rejected", &self.requests_rejected);
        instruments.bind_node_counter("app.requests_redirected", &self.requests_redirected);
        self.obs = Some(instruments);
    }

    /// The attached instruments, if any.
    pub fn instruments(&self) -> Option<&NodeInstruments> {
        self.obs.as_ref()
    }

    /// Installs the fenced state machine this node serves while leading.
    ///
    /// Installing an app also enables `LeaseGrant` broadcasts on the ALIVE
    /// tick, so the other members' apps learn new fencing tokens promptly.
    pub fn install_app(&mut self, app: Box<dyn FencedApp>) {
        self.app = Some(app);
        self.lease_broadcast = true;
    }

    /// Whether a fenced state machine is installed.
    pub fn has_app(&self) -> bool {
        self.app.is_some()
    }

    /// The lease this node currently holds as the leader of `group`.
    pub fn lease_of(&self, group: GroupId) -> Option<LeaderLease> {
        self.groups.get(group)?.lease
    }

    /// The fencing token of this node's current leadership of `group`.
    pub fn fencing_token(&self, group: GroupId) -> Option<FencingToken> {
        Some(self.lease_of(group)?.token)
    }

    /// The most recent lease heard from a remote leader of `group` (its
    /// `renewed_at` is the local receipt time).
    pub fn remote_lease_of(&self, group: GroupId) -> Option<LeaderLease> {
        self.groups.get(group)?.remote_lease
    }

    /// ACCUSE messages dropped because their epoch predated the elector's
    /// current one — each is a duplicated or delayed replay that would have
    /// destabilised a settled leader before the stale-epoch guard existed.
    pub fn stale_accusations_ignored(&self) -> u64 {
        self.stale_accusations_ignored.get()
    }

    /// Client requests served by the installed app under a valid lease.
    pub fn client_requests_applied(&self) -> u64 {
        self.requests_applied.get()
    }

    /// Client requests the installed app rejected for a stale fencing token.
    pub fn client_requests_rejected(&self) -> u64 {
        self.requests_rejected.get()
    }

    /// Client requests answered with a redirect (not leading, no valid
    /// lease, or no app installed).
    pub fn client_requests_redirected(&self) -> u64 {
        self.requests_redirected.get()
    }

    /// Leader leases minted (leaderships taken, or token changes while
    /// leading).
    pub fn leases_minted(&self) -> u64 {
        self.leases_minted.get()
    }

    /// This workstation's identity.
    pub fn node_id(&self) -> NodeId {
        self.config.node
    }

    /// The leader-election algorithm this instance runs.
    pub fn algorithm(&self) -> ElectorKind {
        self.config.algorithm
    }

    /// The groups this instance currently participates in.
    pub fn group_ids(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.groups.ids()
    }

    /// Number of peers with a live record in the workstation's shared
    /// liveness arena (after pruning records no group monitors any more).
    ///
    /// The node itself caches one handle per peer it ever exchanged
    /// heartbeats with, so the floor is the contacted-peer universe — group
    /// churn on top of it must neither grow the count nor reclaim a record
    /// a surviving group still uses.
    pub fn monitored_peer_count(&self) -> usize {
        self.arena.peer_count()
    }

    /// The current leader of `group` as seen by this instance (the "query"
    /// notification style of the paper).
    pub fn leader_of(&self, group: GroupId) -> Option<ProcessId> {
        let state = self.groups.get(group)?;
        state.leader_process(self.config.node, state.elector.leader())
    }

    /// Whether this node is currently competing (sending ALIVEs) in `group`.
    pub fn is_competing(&self, group: GroupId) -> bool {
        self.groups
            .get(group)
            .map(|g| g.should_send_alives())
            .unwrap_or(false)
    }

    /// The application processes of this workstation currently joined to
    /// `group`, in registration order.
    ///
    /// This is how external drivers (the chaos harness's mid-run
    /// leave/rejoin churn, management tooling) discover what there is to
    /// leave without keeping their own books.
    pub fn local_members_of(&self, group: GroupId) -> Vec<ProcessId> {
        self.groups
            .get(group)
            .map(|state| {
                state
                    .local_processes
                    .iter()
                    .map(|&(local, _)| ProcessId::new(self.config.node, local))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Registers a new application process with this service instance and
    /// returns its identifier.
    pub fn register_process(&mut self) -> ProcessId {
        let local = self.next_local_process;
        self.next_local_process += 1;
        let process = ProcessId::new(self.config.node, local);
        self.registered.insert(local, process);
        process
    }

    /// Joins `process` to `group` with the given parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::ForeignProcess`] if the process belongs to a
    /// different workstation, or [`ServiceError::UnknownProcess`] if it was
    /// never registered here.
    pub fn join_group(
        &mut self,
        process: ProcessId,
        group: GroupId,
        join: JoinConfig,
        ctx: &mut ServiceContext,
    ) -> Result<(), ServiceError> {
        if process.node != self.config.node {
            return Err(ServiceError::ForeignProcess(process));
        }
        if !self.registered.contains_key(&process.local) {
            return Err(ServiceError::UnknownProcess(process));
        }
        let me = self.config.node;
        let algorithm = self.config.algorithm;
        let now = ctx.now();
        let arena = &self.arena;
        let adaptive_groups = &mut self.adaptive_groups;
        let state = self.groups.get_or_insert_with(group, || {
            let state = GroupState::new(group, me, algorithm, &join, arena, now);
            if state.tuner.is_adaptive() {
                *adaptive_groups += 1;
            }
            state
        });
        state.upsert_local_process(process.local, join.candidate);
        state.notification = join.notification;
        // Upgrading to candidate after having joined as a listener requires a
        // fresh elector (the accusation time starts now — a newcomer rank).
        // The accusation epoch must NOT restart: epochs already advertised on
        // the wire would become current again, letting a replayed old ACCUSE
        // demote this node after it re-won — and breaking fencing-token
        // monotonicity. Start one above the old elector's epoch instead.
        if join.candidate && !state.elector.is_candidate() {
            state.elector = sle_election::AnyElector::new_with_epoch(
                algorithm,
                me,
                true,
                now,
                state.elector.epoch() + 1,
            );
        }
        state.next_alive_at = now + SimDuration::from_millis(5);
        let grace_ends = state.joined_at + state.self_election_grace();
        ctx.set_timer_at(grace_tag(group), grace_ends);
        if let Some(period) = state.tuner.period() {
            ctx.set_timer_after(tune_tag(group), period);
        }
        if let Some(obs) = &mut self.obs {
            obs.on_join(group, now);
        }
        self.arm_alive_timer(ctx);
        self.arm_fd_timer(group, ctx);
        self.send_group_hello(group, ctx);
        self.check_leader(group, ctx);
        Ok(())
    }

    /// Removes `process` from `group`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::NotJoined`] if the process is not currently a
    /// member of the group on this workstation.
    pub fn leave_group(
        &mut self,
        process: ProcessId,
        group: GroupId,
        ctx: &mut ServiceContext,
    ) -> Result<(), ServiceError> {
        let me = self.config.node;
        let algorithm = self.config.algorithm;
        let state = self
            .groups
            .get_mut(group)
            .ok_or(ServiceError::NotJoined(process, group))?;
        if !state.remove_local_process(process.local) {
            return Err(ServiceError::NotJoined(process, group));
        }
        // Tell the other members explicitly so they do not need to wait for
        // the membership timeout.
        for peer in state.members.peers() {
            ctx.send(peer, ServiceMessage::Leave { group, process });
        }
        if state.local_processes.is_empty() {
            if let Some(removed) = self.groups.remove(group) {
                if removed.tuner.is_adaptive() {
                    self.adaptive_groups -= 1;
                }
            }
            ctx.cancel_timer(fd_tag(group));
            ctx.cancel_timer(tune_tag(group));
            self.arm_alive_timer(ctx);
        } else if !state.locally_candidate() && state.elector.is_candidate() {
            // The last local candidate left: stop competing. As on the
            // listener→candidate upgrade, preserve the accusation epoch so
            // replayed accusations from the candidate life stay stale.
            state.elector = sle_election::AnyElector::new_with_epoch(
                algorithm,
                me,
                false,
                ctx.now(),
                state.elector.epoch() + 1,
            );
            self.check_leader(group, ctx);
        }
        if let Some(obs) = &mut self.obs {
            obs.on_leave(group, ctx.now());
        }
        self.send_hellos(ctx);
        Ok(())
    }

    fn send_hellos(&mut self, ctx: &mut ServiceContext) {
        let announcements: std::sync::Arc<[GroupAnnouncement]> = self
            .groups
            .iter()
            .map(|state| GroupAnnouncement {
                group: state.group,
                processes: state
                    .local_processes
                    .iter()
                    .map(|&(local, candidate)| (ProcessId::new(self.config.node, local), candidate))
                    .collect(),
            })
            .collect();
        self.fan_out_hello(announcements, ctx);
    }

    /// Sends a HELLO announcing only `group` — the prompt-discovery message
    /// a fresh join emits. A node joining many groups in one burst would
    /// otherwise fan out the *full* announcement list per join (quadratic in
    /// the group count); the periodic full HELLO still re-announces
    /// everything within one interval.
    fn send_group_hello(&mut self, group: GroupId, ctx: &mut ServiceContext) {
        let Some(state) = self.groups.get(group) else {
            return;
        };
        let announcements: std::sync::Arc<[GroupAnnouncement]> =
            std::sync::Arc::from([GroupAnnouncement {
                group,
                processes: state
                    .local_processes
                    .iter()
                    .map(|&(local, candidate)| (ProcessId::new(self.config.node, local), candidate))
                    .collect(),
            }]);
        self.fan_out_hello(announcements, ctx);
    }

    fn fan_out_hello(
        &mut self,
        announcements: std::sync::Arc<[GroupAnnouncement]>,
        ctx: &mut ServiceContext,
    ) {
        let msg = ServiceMessage::Hello {
            incarnation: self.incarnation,
            sent_at: ctx.now(),
            announcements,
        };
        for peer in self.config.remote_peers().collect::<Vec<_>>() {
            ctx.send(peer, msg.clone());
        }
    }

    /// Re-arms the per-node ALIVE tick at the earliest `next_alive_at`
    /// across all groups (or cancels it when the node is in no group).
    fn arm_alive_timer(&self, ctx: &mut ServiceContext) {
        match self.groups.iter().map(|s| s.next_alive_at).min() {
            Some(at) => ctx.set_timer_at(ALIVE_TIMER, at),
            None => ctx.cancel_timer(ALIVE_TIMER),
        }
    }

    /// The per-node ALIVE tick: fans out heartbeats for every group that is
    /// due, coalescing the entries bound for the same destination into one
    /// batched datagram (split only at the transport's size budget).
    fn handle_alive_tick(&mut self, ctx: &mut ServiceContext) {
        let me = self.config.node;
        let incarnation = self.incarnation;
        let now = ctx.now();
        // Gather the due per-(destination, group) entries into the per-peer
        // scratch buffers. Groups are visited in ascending group id (the
        // dense index is sorted) and destinations flushed in ascending peer
        // id below, so the fan-out order stays deterministic; the buffers
        // are reused across ticks, so the steady state allocates only the
        // outgoing messages themselves.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        for gi in 0..self.groups.len() {
            let (group, gslot) = self.groups.pair(gi);
            let state = self.groups.slot_mut(gslot);
            if state.next_alive_at > now {
                continue;
            }
            due.push(group);
            let interval = state.send_interval();
            // Always advance the due time so a node that re-enters the
            // competition resumes sending within one interval — and snap it
            // to the node-wide grid of this interval (multiples of the
            // interval since the node started), so groups joined at
            // staggered times converge onto a shared phase after their
            // first send and heartbeats bound for the same peer keep
            // sharing datagrams. The gap between consecutive sends never
            // exceeds one interval, so receivers' freshness horizons are
            // unaffected.
            let step = interval.as_nanos().max(1);
            state.next_alive_at = SimInstant::from_nanos((now.as_nanos() / step + 1) * step);
            if !state.should_send_alives() {
                continue;
            }
            // Holding a lease and still sending ALIVEs is the leader's
            // liveness evidence: renew for another T_D. A crashed leader
            // stops ticking, so its last lease dies within T_D — before any
            // survivor's detector can complete and elect a successor.
            if let Some(lease) = &mut state.lease {
                lease.renewed_at = now;
                self.lease_renewals.inc();
                if self.lease_broadcast {
                    let grant = ServiceMessage::LeaseGrant {
                        group,
                        token: lease.token,
                        valid_for: lease.ttl,
                    };
                    for dest in state.members.peers() {
                        ctx.send(dest, grant.clone());
                    }
                }
            }
            let payload = state.elector.alive_payload();
            let representative = state
                .local_representative(me)
                .unwrap_or_else(|| ProcessId::new(me, 0));
            for member in state.members.iter() {
                let dest = member.peer;
                let requested = state
                    .fd
                    .requested_interval(dest)
                    .unwrap_or_else(|| state.qos.detection_time().mul_f64(0.25));
                let pslot = self.peers.intern(dest, &self.arena);
                if self.alive_scratch.len() <= pslot {
                    self.alive_scratch.resize_with(pslot + 1, Vec::new);
                }
                let bucket = &mut self.alive_scratch[pslot];
                if bucket.is_empty() {
                    self.scratch_touched.push((dest.0, pslot as u32));
                }
                bucket.push(GroupAlive {
                    group,
                    sending_interval: interval,
                    requested_interval: requested,
                    payload,
                    representative,
                });
            }
        }
        // Flush per destination, in ascending peer id. Each chunk is one
        // datagram with its own node-level sequence number, split at the
        // transport's size budget.
        let mut touched = std::mem::take(&mut self.scratch_touched);
        touched.sort_unstable_by_key(|&(id, _)| id);
        for &(dest_id, pslot) in &touched {
            let dest = NodeId(dest_id);
            let pslot = pslot as usize;
            let mut alives = std::mem::take(&mut self.alive_scratch[pslot]);
            let mut chunk: Vec<GroupAlive> = Vec::new();
            let mut chunk_bytes = 0usize;
            for entry in alives.drain(..) {
                let entry_bytes = entry.wire_size();
                if chunk_bytes + entry_bytes > MAX_ALIVE_BATCH_BYTES && !chunk.is_empty() {
                    self.flush_alive_chunk(dest, pslot, incarnation, now, &mut chunk, ctx);
                    chunk_bytes = 0;
                }
                chunk_bytes += entry_bytes;
                chunk.push(entry);
            }
            self.flush_alive_chunk(dest, pslot, incarnation, now, &mut chunk, ctx);
            // Hand the (now empty) buffer's capacity back to the scratch.
            self.alive_scratch[pslot] = alives;
        }
        touched.clear();
        self.scratch_touched = touched;
        // The settle-delayed mint is time-triggered, not event-triggered:
        // without this sweep a leader whose elector went quiet after the
        // last leadership change would hold the output but never re-check,
        // and the delayed mint would starve until the next elector event.
        for &group in &due {
            self.check_leader(group, ctx);
        }
        due.clear();
        self.due_scratch = due;
        self.arm_alive_timer(ctx);
    }

    /// Sends one assembled ALIVE chunk to `dest` (peer slot `pslot`),
    /// consuming the chunk and stamping it with the next node-level
    /// sequence number of the destination's heartbeat stream.
    fn flush_alive_chunk(
        &mut self,
        dest: NodeId,
        pslot: usize,
        incarnation: u64,
        now: SimInstant,
        chunk: &mut Vec<GroupAlive>,
        ctx: &mut ServiceContext,
    ) {
        if chunk.is_empty() {
            return;
        }
        let seq = {
            let entry = &mut self.peers.entries[pslot];
            let seq = entry.node_seq;
            entry.node_seq += 1;
            seq
        };
        self.alive_datagrams_sent.inc();
        self.alive_payloads_sent.add(chunk.len() as u64);
        if chunk.len() == 1 {
            let entry = chunk.pop().expect("chunk has one entry");
            ctx.send(
                dest,
                ServiceMessage::Alive {
                    group: entry.group,
                    header: AliveHeader {
                        incarnation,
                        seq,
                        sent_at: now,
                        sending_interval: entry.sending_interval,
                        requested_interval: entry.requested_interval,
                    },
                    payload: entry.payload,
                    representative: entry.representative,
                },
            );
        } else {
            ctx.send(
                dest,
                ServiceMessage::AliveBatch {
                    incarnation,
                    seq,
                    sent_at: now,
                    alives: std::mem::take(chunk),
                },
            );
        }
    }

    /// Per-group ALIVE payloads handed to the transport so far (batch
    /// entries count individually) — the figure the paper's message-count
    /// analysis is about: O(n) per group in steady state for S3, O(n²)
    /// for S2.
    pub fn alive_payloads_sent(&self) -> u64 {
        self.alive_payloads_sent.get()
    }

    /// ALIVE datagrams handed to the transport so far (a batch counts
    /// once); `alive_payloads_sent - alive_datagrams_sent` is the fan-out
    /// the batching saved.
    pub fn alive_datagrams_sent(&self) -> u64 {
        self.alive_datagrams_sent.get()
    }

    fn arm_fd_timer(&mut self, group: GroupId, ctx: &mut ServiceContext) {
        if let Some(state) = self.groups.get_mut(group) {
            if let Some(deadline) = state.fd.next_deadline() {
                // Heartbeats *extend* freshness horizons, so re-arming on
                // every arrival would supersede (but not remove — the wheel
                // cancels lazily) the previous entry, flooding the event
                // queue with stale pops. Keep the earlier timer and let it
                // fire as a cheap no-op poll instead.
                if state.armed_fd_deadline.is_some_and(|at| at <= deadline) {
                    return;
                }
                state.armed_fd_deadline = Some(deadline);
                ctx.set_timer_at(fd_tag(group), deadline);
            }
        }
    }

    fn check_leader(&mut self, group: GroupId, ctx: &mut ServiceContext) {
        let me = self.config.node;
        let now = ctx.now();
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        let mut leader = state.leader_process(me, state.elector.leader());
        // A freshly (re)joined candidate does not claim the leadership for
        // itself until the grace period elapses: it first listens for an
        // incumbent leader, which keeps rejoining workstations from briefly
        // disrupting the group's agreement.
        if let Some(claimed) = leader {
            if claimed.node == me && now < state.joined_at + state.self_election_grace() {
                leader = None;
            }
        }
        // Lease upkeep: mint on taking the leadership (and whenever the
        // elector's rank or epoch moved, which changes the token), drop on
        // losing it. Renewals ride the ALIVE tick.
        let leads = leader.is_some_and(|l| l.node == me);
        if leads {
            // Settle delay: only a node that has led *continuously* for one
            // lease term (`T_D`) mints. A transient claimant yields before
            // the delay elapses and never serves, and by the time a genuine
            // successor starts serving, the deposed leader's lease (TTL
            // `T_D`, no longer renewed) has already lapsed — so two leases
            // are never simultaneously valid.
            let led_since = *state.led_since.get_or_insert(now);
            if now >= led_since + state.qos.detection_time() {
                let natural = FencingToken {
                    accusation_time: state.elector.accusation_time(),
                    node: me,
                    epoch: state.elector.epoch(),
                    incarnation: self.incarnation,
                };
                // The issued token must strictly dominate every token this node
                // has granted or observed for the group. A transiently
                // self-elected claimant broadcasts a token that orders *above*
                // ours (its later accusation time is a worse rank but a higher
                // token); unless the rightful leader out-mints it after the
                // claimant yields, every app that observed the claimant's grant
                // would fence-reject the rightful leader's writes forever.
                let observed = state.remote_lease.as_ref().map(|l| l.token);
                let needs_mint = match &state.lease {
                    None => true,
                    Some(lease) => {
                        natural > lease.token
                            || (natural.epoch, natural.incarnation)
                                != (lease.token.epoch, lease.token.incarnation)
                            || observed.is_some_and(|o| o >= lease.token)
                    }
                };
                if needs_mint {
                    let mut token = natural;
                    for floor in [state.lease.as_ref().map(|l| l.token), observed]
                        .into_iter()
                        .flatten()
                    {
                        if token <= floor {
                            token.accusation_time =
                                floor.accusation_time + SimDuration::from_nanos(1);
                        }
                    }
                    state.lease = Some(LeaderLease {
                        token,
                        renewed_at: now,
                        ttl: state.qos.detection_time(),
                    });
                    self.leases_minted.inc();
                }
            }
        } else {
            state.lease = None;
            state.led_since = None;
        }
        if leader != state.announced_leader {
            state.announced_leader = leader;
            if let Some(obs) = &mut self.obs {
                obs.on_leader_change(group, leader, now);
            }
            ctx.emit(ServiceEvent::LeaderChanged { group, leader });
        }
    }

    /// Handles a possibly new incarnation of `peer`: if the peer restarted,
    /// all state learnt from its previous life is discarded.
    fn note_peer_incarnation(&mut self, peer: NodeId, incarnation: u64, ctx: &mut ServiceContext) {
        let slot = self.peers.intern(peer, &self.arena);
        let known = self.peers.entries[slot].incarnation;
        match known {
            Some(k) if incarnation <= k => return,
            _ => {}
        }
        self.peers.entries[slot].incarnation = Some(incarnation);
        if known.is_none() {
            // First contact with this peer: nothing to reset.
            return;
        }
        let now = ctx.now();
        let groups: Vec<GroupId> = self.groups.ids().collect();
        for group in groups {
            let Some(state) = self.groups.get_mut(group) else {
                continue;
            };
            if state.members.remove(peer).is_some() {
                state.elector.remove_peer(peer, now);
                state.fd.reset_peer(peer, now);
                state.tuner.forget_peer(peer);
                self.check_leader(group, ctx);
            }
        }
    }

    fn handle_hello(
        &mut self,
        from: NodeId,
        incarnation: u64,
        announcements: std::sync::Arc<[GroupAnnouncement]>,
        ctx: &mut ServiceContext,
    ) {
        self.note_peer_incarnation(from, incarnation, ctx);
        let now = ctx.now();
        for announcement in announcements.iter() {
            let group = announcement.group;
            let Some(state) = self.groups.get_mut(group) else {
                continue;
            };
            let has_candidate = announcement.processes.iter().any(|(_, c)| *c);
            let created = state.members.get(from).is_none();
            let member = state.members.ensure(from, incarnation, now);
            // Steady-state fast path: the sender re-announces the same
            // incarnation and process list every HELLO interval. When
            // nothing derived can change — the advertised representative
            // (if any) already matches what this list would resolve to —
            // the refreshed `last_heard` is the whole effect.
            let fallback_representative = announcement
                .processes
                .iter()
                .filter(|(_, candidate)| *candidate)
                .map(|(process, _)| *process)
                .min();
            if !created
                && member.incarnation == incarnation
                && member.processes == announcement.processes
                && (member.representative.is_none()
                    || member.representative == fallback_representative)
            {
                if state.armed_fd_deadline.is_none() {
                    self.arm_fd_timer(group, ctx);
                }
                continue;
            }
            member.incarnation = incarnation;
            member.processes = announcement.processes.clone();
            // A HELLO's process list supersedes any representative a
            // previous ALIVE advertised; consumers fall back to the first
            // announced candidate (`MemberEntry::representative_process`).
            member.representative = None;
            if has_candidate {
                state.fd.ensure_peer(from, now);
            }
            self.arm_fd_timer(group, ctx);
            self.check_leader(group, ctx);
        }
    }

    fn handle_alive(
        &mut self,
        from: NodeId,
        group: GroupId,
        header: AliveHeader,
        payload: sle_election::AlivePayload,
        representative: ProcessId,
        ctx: &mut ServiceContext,
    ) {
        self.note_peer_incarnation(from, header.incarnation, ctx);
        self.note_alive_datagram(from, header.seq, header.sent_at, ctx.now());
        self.apply_group_alive(from, group, header, payload, representative, ctx);
    }

    /// Node-level accounting of one incoming ALIVE datagram, before the
    /// per-group dispatch. The heartbeat sequence is a *node-level*
    /// per-destination stream, so every consumer of sequence numbers must
    /// see every datagram of the stream, not just the subset carrying its
    /// own group — a group observing a sparser view would infer phantom
    /// loss from the sequence numbers consumed by its siblings (or, after
    /// a lost LEAVE, by groups this node is no longer even in). The shared
    /// arena records the sample once (the per-group monitors' recordings
    /// dedup against it), and every adaptive tuner monitoring the sender
    /// gets the full stream.
    fn note_alive_datagram(
        &mut self,
        from: NodeId,
        seq: u64,
        sent_at: SimInstant,
        now: SimInstant,
    ) {
        // The slab's cached handle keeps this off the arena mutex: one
        // binary search per datagram instead of a lock plus a map walk.
        let slot = self.peers.intern(from, &self.arena);
        self.peers.entries[slot].liveness.record(seq, sent_at, now);
        if let Some(obs) = &mut self.obs {
            obs.on_alive_datagram(from, now);
        }
        if self.adaptive_groups == 0 {
            // No adaptive tuner anywhere on this node (the paper-faithful
            // default): skip the per-group fan-out on the hot path.
            return;
        }
        for gi in 0..self.groups.len() {
            let (_, gslot) = self.groups.pair(gi);
            let state = self.groups.slot_mut(gslot);
            if state.members.get(from).is_some() {
                state.tuner.observe(from, seq, sent_at, now);
            }
        }
    }

    /// Dispatches a batched ALIVE: the shared envelope is unpacked into one
    /// per-group heartbeat each. The shared liveness arena deduplicates the
    /// measurement, so the datagram is one sample on the link however many
    /// groups it carries.
    fn handle_alive_batch(
        &mut self,
        from: NodeId,
        incarnation: u64,
        seq: u64,
        sent_at: SimInstant,
        alives: Vec<GroupAlive>,
        ctx: &mut ServiceContext,
    ) {
        self.note_peer_incarnation(from, incarnation, ctx);
        self.note_alive_datagram(from, seq, sent_at, ctx.now());
        for entry in alives {
            let header = AliveHeader {
                incarnation,
                seq,
                sent_at,
                sending_interval: entry.sending_interval,
                requested_interval: entry.requested_interval,
            };
            self.apply_group_alive(
                from,
                entry.group,
                header,
                entry.payload,
                entry.representative,
                ctx,
            );
        }
    }

    /// The per-group effect of one ALIVE heartbeat (single or unpacked from
    /// a batch): membership refresh, failure-detector freshness, election
    /// payload.
    fn apply_group_alive(
        &mut self,
        from: NodeId,
        group: GroupId,
        header: AliveHeader,
        payload: sle_election::AlivePayload,
        representative: ProcessId,
        ctx: &mut ServiceContext,
    ) {
        let now = ctx.now();
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        // A member first learnt of via ALIVE (no HELLO yet) is seeded with
        // its advertised representative as the only known process; a HELLO
        // will replace the list with the authoritative one.
        let created = state.members.get(from).is_none();
        let member = state.members.ensure(from, header.incarnation, now);
        if created {
            member.processes = vec![(representative, true)];
        }
        let representative_changed = member.representative != Some(representative);
        member.representative = Some(representative);
        member.requested_interval = Some(header.requested_interval);
        let leader_before = state.elector.leader();
        // The measurement side of this heartbeat (link estimator, adaptive
        // tuner) was already fed at node level by `note_alive_datagram`;
        // the monitor's own recording dedups against it.
        let transition = state.fd.on_heartbeat(
            from,
            header.seq,
            header.sent_at,
            header.sending_interval,
            now,
        );
        let mut revived = false;
        if let Some(t) = transition {
            if t.transition == Transition::BecameTrusted {
                // A revival of a suspected peer: the suspicion was a
                // detector mistake (the paper's T_MR numerator).
                revived = true;
                if let Some(obs) = &mut self.obs {
                    obs.on_mistake(group, now);
                }
                state.elector.on_trust(from, now);
            }
        }
        state.elector.on_alive(from, payload, now);
        // A heartbeat only *extends* the sender's freshness horizon, so the
        // earliest FD deadline cannot have moved earlier unless the peer's
        // trust state transitioned; skip the re-arm scan on the steady-state
        // path where a timer is already pending.
        if revived || state.armed_fd_deadline.is_none() {
            self.arm_fd_timer(group, ctx);
        }
        // `check_leader` per payload is the scale-cell hot path. In steady
        // state nothing it derives has changed: same elector leader, same
        // representative, no trust transition. Time-driven transitions (the
        // self-election grace elapsing, the lease settle delay) are driven
        // by the grace / FD / ALIVE timers, not by received heartbeats.
        let leader_changed = {
            let Some(state) = self.groups.get(group) else {
                return;
            };
            state.elector.leader() != leader_before
        };
        if created || representative_changed || revived || leader_changed {
            self.check_leader(group, ctx);
        }
    }

    fn handle_accusation(&mut self, group: GroupId, epoch: u64, ctx: &mut ServiceContext) {
        let now = ctx.now();
        if let Some(state) = self.groups.get_mut(group) {
            // An ACCUSE below the elector's current epoch was minted against
            // a previous suspicion episode — or a previous elector life (the
            // chaos duplication machinery can replay one long after the
            // leader yielded and re-won). Honouring it would re-rank a
            // settled leader and forge a fencing-token regression. The
            // electors additionally require exact epoch equality; dropping
            // stale ones here makes replays observable as a counter.
            if epoch < state.elector.epoch() {
                self.stale_accusations_ignored.inc();
                return;
            }
            state.elector.on_accusation(epoch, now);
        }
        self.check_leader(group, ctx);
    }

    /// Serves one client-tier request: applied by the installed app while
    /// this node leads `group` under a valid lease, otherwise answered with
    /// a redirect carrying the current leader view.
    fn handle_client_request(
        &mut self,
        from: NodeId,
        group: GroupId,
        session: u64,
        seq: u64,
        payload: u64,
        ctx: &mut ServiceContext,
    ) {
        let now = ctx.now();
        let Some(state) = self.groups.get_mut(group) else {
            self.requests_redirected.inc();
            ctx.send(
                from,
                ServiceMessage::Redirect {
                    group,
                    session,
                    seq,
                    leader: None,
                },
            );
            return;
        };
        let lease = state.lease.filter(|lease| lease.valid_at(now));
        if let (Some(lease), Some(app)) = (lease, self.app.as_mut()) {
            let (applied, value) = match app.apply(group, lease.token, payload) {
                Ok(value) => {
                    self.requests_applied.inc();
                    (true, value)
                }
                Err(_stale) => {
                    self.requests_rejected.inc();
                    (false, 0)
                }
            };
            ctx.send(
                from,
                ServiceMessage::ClientReply {
                    group,
                    session,
                    seq,
                    applied,
                    value,
                    token: lease.token,
                },
            );
        } else {
            self.requests_redirected.inc();
            ctx.send(
                from,
                ServiceMessage::Redirect {
                    group,
                    session,
                    seq,
                    leader: state.announced_leader,
                },
            );
        }
    }

    /// Records a remote leader's lease broadcast and forwards the fencing
    /// token to the installed app, advancing its high-water mark ahead of
    /// the new leader's first write.
    fn handle_lease_grant(
        &mut self,
        group: GroupId,
        token: FencingToken,
        valid_for: SimDuration,
        ctx: &mut ServiceContext,
    ) {
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        // Track the *highest* grant seen: it answers client redirects and
        // floors this node's own future mints (see `check_leader`).
        if state.remote_lease.as_ref().is_none_or(|l| token >= l.token) {
            state.remote_lease = Some(LeaderLease {
                token,
                renewed_at: ctx.now(),
                ttl: valid_for,
            });
        }
        if let Some(app) = self.app.as_mut() {
            app.observe_token(group, token);
        }
        // A leading node that just observed a claimant's higher token must
        // immediately out-mint it to stay serviceable.
        self.check_leader(group, ctx);
    }

    fn handle_leave(
        &mut self,
        from: NodeId,
        group: GroupId,
        process: ProcessId,
        ctx: &mut ServiceContext,
    ) {
        let now = ctx.now();
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        let mut gone = false;
        if let Some(member) = state.members.get_mut(from) {
            member.processes.retain(|(p, _)| *p != process);
            if member.processes.is_empty() {
                gone = true;
            }
        }
        if gone {
            state.members.remove(from);
            state.elector.remove_peer(from, now);
            state.fd.remove_peer(from);
            state.tuner.forget_peer(from);
        }
        self.check_leader(group, ctx);
    }

    fn handle_hello_timer(&mut self, ctx: &mut ServiceContext) {
        let now = ctx.now();
        let timeout = self.config.membership_timeout;
        let groups: Vec<GroupId> = self.groups.ids().collect();
        for group in groups {
            let mut expired = Vec::new();
            if let Some(state) = self.groups.get_mut(group) {
                for member in state.members.iter() {
                    let silent_for = now.saturating_since(member.last_heard);
                    if silent_for > timeout && !state.fd.is_trusted(member.peer) {
                        expired.push(member.peer);
                    }
                }
                for &peer in &expired {
                    state.members.remove(peer);
                    state.elector.remove_peer(peer, now);
                    state.fd.remove_peer(peer);
                    state.tuner.forget_peer(peer);
                }
            }
            if !expired.is_empty() {
                self.check_leader(group, ctx);
            }
        }
        self.send_hellos(ctx);
        ctx.set_timer_after(HELLO_TIMER, self.config.hello_interval);
    }

    fn handle_fd_timer(&mut self, group: GroupId, ctx: &mut ServiceContext) {
        let now = ctx.now();
        let mut accusations: Vec<(NodeId, u64)> = Vec::new();
        if let Some(state) = self.groups.get_mut(group) {
            // The armed timer was just consumed by firing.
            state.armed_fd_deadline = None;
            for transition in state.fd.poll(now) {
                if transition.transition == Transition::BecameSuspected {
                    if let Some(obs) = &mut self.obs {
                        // Detection latency T_D: silence since the suspected
                        // peer's last heartbeat or gossip.
                        let silent_for = state
                            .members
                            .get(transition.peer)
                            .map(|m| now.saturating_since(m.last_heard))
                            .unwrap_or_default();
                        obs.on_detection(group, silent_for, now);
                    }
                    for output in state.elector.on_suspect(transition.peer, now) {
                        match output {
                            ElectorOutput::SendAccusation { to, epoch } => {
                                accusations.push((to, epoch));
                            }
                        }
                    }
                }
            }
        }
        for (to, epoch) in accusations {
            if let Some(obs) = &mut self.obs {
                obs.on_accusation(group, to, now);
            }
            ctx.send(to, ServiceMessage::Accuse { group, epoch });
        }
        self.arm_fd_timer(group, ctx);
        self.check_leader(group, ctx);
    }

    /// Periodic QoS re-derivation (adaptive tuning only): asks the tuner for
    /// a fresh recommendation per monitored peer and applies it live to the
    /// failure detector and to the election grace period.
    fn handle_tune_timer(&mut self, group: GroupId, ctx: &mut ServiceContext) {
        let now = ctx.now();
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        let Some(period) = state.tuner.period() else {
            return;
        };
        let qos = state.qos;
        let peers: Vec<NodeId> = state.fd.peers().collect();
        // The group-wide grace period must cover the *slowest* link: an
        // incumbent leader behind the worst link still has to be heard from
        // before a rejoining candidate may claim the leadership. A peer
        // without a recommendation is still on the static bound, so the
        // grace may only be tuned once every monitored peer is measured.
        let mut round_grace: Option<SimDuration> = None;
        let mut all_peers_measured = !peers.is_empty();
        for peer in peers {
            if let Some(recommendation) = state.tuner.recommend(peer, &qos, now) {
                state.fd.set_peer_params(peer, recommendation.params);
                let grace = recommendation.election_grace();
                round_grace = Some(round_grace.map_or(grace, |g| g.max(grace)));
            } else {
                all_peers_measured = false;
            }
        }
        state.tuned_grace = if all_peers_measured {
            round_grace
        } else {
            None
        };
        ctx.set_timer_after(tune_tag(group), period);
        self.arm_fd_timer(group, ctx);
    }

    /// The failure-detector operating parameters currently used towards
    /// `peer` in `group` (observability hook; also used by the experiment
    /// harness to verify adaptation).
    pub fn fd_params_of(&self, group: GroupId, peer: NodeId) -> Option<FdParams> {
        self.groups.get(group)?.fd.params(peer)
    }
}

impl Actor for ServiceNode {
    type Msg = ServiceMessage;
    type Event = ServiceEvent;

    fn on_start(&mut self, ctx: &mut ServiceContext) {
        self.incarnation = ctx.incarnation();
        let auto_joins = self.config.auto_joins.clone();
        for auto in auto_joins {
            let process = self.register_process();
            // Joining our own freshly registered process cannot fail.
            let _ = self.join_group(process, auto.group, auto.config, ctx);
        }
        self.send_hellos(ctx);
        ctx.set_timer_after(HELLO_TIMER, self.config.hello_interval);
    }

    fn on_message(&mut self, from: NodeId, msg: ServiceMessage, ctx: &mut ServiceContext) {
        match msg {
            ServiceMessage::Hello {
                incarnation,
                announcements,
                ..
            } => self.handle_hello(from, incarnation, announcements, ctx),
            ServiceMessage::Alive {
                group,
                header,
                payload,
                representative,
            } => self.handle_alive(from, group, header, payload, representative, ctx),
            ServiceMessage::AliveBatch {
                incarnation,
                seq,
                sent_at,
                alives,
            } => self.handle_alive_batch(from, incarnation, seq, sent_at, alives, ctx),
            ServiceMessage::Accuse { group, epoch } => self.handle_accusation(group, epoch, ctx),
            ServiceMessage::Leave { group, process } => {
                self.handle_leave(from, group, process, ctx)
            }
            ServiceMessage::LeaseGrant {
                group,
                token,
                valid_for,
            } => self.handle_lease_grant(group, token, valid_for, ctx),
            ServiceMessage::ClientRequest {
                group,
                session,
                seq,
                payload,
            } => self.handle_client_request(from, group, session, seq, payload, ctx),
            // Client-bound answers: a service instance can receive these
            // only through misrouting (or a hostile sender); ignore them.
            ServiceMessage::ClientReply { .. } | ServiceMessage::Redirect { .. } => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut ServiceContext) {
        if tag == HELLO_TIMER {
            self.handle_hello_timer(ctx);
            return;
        }
        if tag == ALIVE_TIMER {
            self.handle_alive_tick(ctx);
            return;
        }
        let group = GroupId((tag.0 & 0xFFFF_FFFF) as u32);
        match tag.0 >> 32 {
            FD_KIND => self.handle_fd_timer(group, ctx),
            GRACE_KIND => {
                if let Some(obs) = &mut self.obs {
                    obs.on_grace_timer(ctx.now());
                }
                self.check_leader(group, ctx)
            }
            TUNE_KIND => self.handle_tune_timer(group, ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::prelude::*;

    const GROUP: GroupId = GroupId(1);

    fn build_world(
        n: usize,
        algorithm: ElectorKind,
        seed: u64,
    ) -> World<ServiceNode, PerfectMedium> {
        World::new(
            n,
            Box::new(move |node, _inc| {
                let config = ServiceConfig::full_mesh(node, n, algorithm)
                    .with_auto_join(GROUP, JoinConfig::candidate());
                ServiceNode::new(config)
            }),
            PerfectMedium,
            seed,
        )
    }

    fn agreed_leader<M: Medium>(
        world: &World<ServiceNode, M>,
        group: GroupId,
    ) -> Option<ProcessId> {
        let mut leader = None;
        for i in 0..world.num_nodes() {
            let node = NodeId(i as u32);
            if !world.is_up(node) {
                continue;
            }
            let view = world.actor(node)?.leader_of(group)?;
            match leader {
                None => leader = Some(view),
                Some(l) if l == view => {}
                _ => return None,
            }
        }
        leader
    }

    #[test]
    fn a_group_of_services_agrees_on_a_leader() {
        for algorithm in ElectorKind::all() {
            let mut world = build_world(4, algorithm, 7);
            let mut obs = NullObserver;
            world.run_for(SimDuration::from_secs(5), &mut obs);
            let leader = agreed_leader(&world, GROUP);
            assert!(leader.is_some(), "{algorithm}: no agreement after 5 s");
        }
    }

    #[test]
    fn leader_crash_triggers_reelection_within_seconds() {
        for algorithm in ElectorKind::all() {
            let mut world = build_world(4, algorithm, 11);
            let mut obs = NullObserver;
            world.run_for(SimDuration::from_secs(5), &mut obs);
            let leader = agreed_leader(&world, GROUP).expect("initial leader");

            world.schedule_crash(leader.node, world.now() + SimDuration::from_millis(10));
            world.run_for(SimDuration::from_secs(5), &mut obs);
            let new_leader = agreed_leader(&world, GROUP)
                .unwrap_or_else(|| panic!("{algorithm}: no new leader after crash"));
            assert_ne!(
                new_leader.node, leader.node,
                "{algorithm}: crashed node still leads"
            );
        }
    }

    #[test]
    fn stable_algorithms_keep_leader_when_smaller_id_rejoins() {
        // Crash node 0 (smallest id). Under S2/S3 its recovery must not
        // demote the incumbent; under S1 it must (that is the instability
        // the paper measures).
        for (algorithm, expect_demotion) in [
            (ElectorKind::OmegaId, true),
            (ElectorKind::OmegaLc, false),
            (ElectorKind::OmegaL, false),
        ] {
            let mut world = build_world(4, algorithm, 13);
            let mut obs = NullObserver;
            world.schedule_crash(NodeId(0), SimInstant::from_secs_f64(3.0));
            world.schedule_recovery(NodeId(0), SimInstant::from_secs_f64(20.0));
            world.run_for(SimDuration::from_secs(15), &mut obs);
            let leader_before = agreed_leader(&world, GROUP).expect("leader before rejoin");
            assert_ne!(leader_before.node, NodeId(0));

            world.run_for(SimDuration::from_secs(15), &mut obs);
            let leader_after = agreed_leader(&world, GROUP).expect("leader after rejoin");
            if expect_demotion {
                assert_eq!(leader_after.node, NodeId(0), "{algorithm}: S1 must demote");
            } else {
                assert_eq!(
                    leader_after, leader_before,
                    "{algorithm}: stable algorithm must not demote a healthy leader"
                );
            }
        }
    }

    #[test]
    fn omega_l_converges_to_a_single_sender() {
        let mut world = build_world(6, ElectorKind::OmegaL, 19);
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_secs(10), &mut obs);
        let competing: Vec<NodeId> = (0..6)
            .map(|i| NodeId(i as u32))
            .filter(|&n| {
                world
                    .actor(n)
                    .map(|a| a.is_competing(GROUP))
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(
            competing.len(),
            1,
            "exactly one process should still send ALIVEs"
        );
        let leader = agreed_leader(&world, GROUP).unwrap();
        assert_eq!(leader.node, competing[0]);
    }

    #[test]
    fn omega_lc_keeps_every_candidate_sending() {
        let mut world = build_world(4, ElectorKind::OmegaLc, 23);
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_secs(5), &mut obs);
        for i in 0..4 {
            assert!(world.actor(NodeId(i)).unwrap().is_competing(GROUP));
        }
    }

    #[test]
    fn join_and_leave_api_validation() {
        let config = ServiceConfig::full_mesh(NodeId(0), 2, ElectorKind::OmegaLc);
        let mut node = ServiceNode::new(config);
        let mut ctx = ServiceContext::new(SimInstant::ZERO, NodeId(0), 0);
        let foreign = ProcessId::new(NodeId(1), 0);
        assert_eq!(
            node.join_group(foreign, GROUP, JoinConfig::candidate(), &mut ctx),
            Err(ServiceError::ForeignProcess(foreign))
        );
        let unregistered = ProcessId::new(NodeId(0), 9);
        assert_eq!(
            node.join_group(unregistered, GROUP, JoinConfig::candidate(), &mut ctx),
            Err(ServiceError::UnknownProcess(unregistered))
        );
        let process = node.register_process();
        assert_eq!(
            node.leave_group(process, GROUP, &mut ctx),
            Err(ServiceError::NotJoined(process, GROUP))
        );
        assert!(node.local_members_of(GROUP).is_empty());
        assert!(node
            .join_group(process, GROUP, JoinConfig::candidate(), &mut ctx)
            .is_ok());
        assert_eq!(node.leader_of(GROUP), Some(process));
        assert_eq!(node.group_ids().collect::<Vec<_>>(), vec![GROUP]);
        assert_eq!(node.local_members_of(GROUP), vec![process]);
        assert!(node.leave_group(process, GROUP, &mut ctx).is_ok());
        assert_eq!(node.leader_of(GROUP), None);
        assert!(node.local_members_of(GROUP).is_empty());
        assert_eq!(node.algorithm(), ElectorKind::OmegaLc);
        assert_eq!(node.node_id(), NodeId(0));
    }

    #[test]
    fn listener_follows_without_becoming_leader() {
        let n = 3;
        let mut world: World<ServiceNode, PerfectMedium> = World::new(
            n,
            Box::new(move |node, _inc| {
                let join = if node == NodeId(2) {
                    JoinConfig::listener()
                } else {
                    JoinConfig::candidate()
                };
                let config = ServiceConfig::full_mesh(node, n, ElectorKind::OmegaL)
                    .with_auto_join(GROUP, join);
                ServiceNode::new(config)
            }),
            PerfectMedium,
            31,
        );
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_secs(5), &mut obs);
        let leader = agreed_leader(&world, GROUP).expect("leader");
        assert_ne!(leader.node, NodeId(2), "a listener must never be elected");
        assert!(!world.actor(NodeId(2)).unwrap().is_competing(GROUP));
    }

    #[test]
    fn adaptive_tuning_tracks_latency_regimes_deterministically() {
        // A two-node group over a deterministic medium whose delay steps
        // 90 ms → 2 ms → 150 ms. The tuner's recommended timeout shift δ
        // must shrink after the latency drop and grow after the spike.
        let n = 2;
        let medium = SteppedDelayMedium::new(SimDuration::from_millis(90))
            .with_step(SimInstant::from_secs_f64(20.0), SimDuration::from_millis(2))
            .with_step(
                SimInstant::from_secs_f64(40.0),
                SimDuration::from_millis(150),
            );
        let mut world: World<ServiceNode, SteppedDelayMedium> = World::new(
            n,
            Box::new(move |node, _inc| {
                let config = ServiceConfig::full_mesh(node, n, ElectorKind::OmegaLc)
                    .with_auto_join(GROUP, JoinConfig::candidate().with_adaptive_tuning());
                ServiceNode::new(config)
            }),
            medium,
            3,
        );
        let mut obs = NullObserver;
        let params_at = |world: &World<ServiceNode, SteppedDelayMedium>| {
            world
                .actor(NodeId(0))
                .unwrap()
                .fd_params_of(GROUP, NodeId(1))
                .expect("node 0 monitors node 1")
        };

        world.run_until(SimInstant::from_secs_f64(18.0), &mut obs);
        let slow = params_at(&world);
        // Tuned: the bound must already be below the static T_D^U = 1 s.
        assert!(slow.worst_case_detection() < SimDuration::from_secs(1));
        assert!(
            slow.shift > SimDuration::from_millis(90),
            "δ must clear the 90 ms delay"
        );

        world.run_until(SimInstant::from_secs_f64(38.0), &mut obs);
        let fast = params_at(&world);
        assert!(
            fast.shift < slow.shift,
            "δ must shrink after the latency drop: {} !< {}",
            fast.shift,
            slow.shift
        );

        world.run_until(SimInstant::from_secs_f64(58.0), &mut obs);
        let spiked = params_at(&world);
        assert!(
            spiked.shift > fast.shift,
            "δ must grow after the latency spike: {} !> {}",
            spiked.shift,
            fast.shift
        );
        assert!(
            spiked.shift > SimDuration::from_millis(150),
            "δ must clear the 150 ms delay"
        );

        // Throughout, both nodes keep agreeing on a leader (tuning must not
        // destabilise the election).
        assert!(agreed_leader(&world, GROUP).is_some());
    }

    #[test]
    fn static_join_never_arms_the_tuner() {
        let config = ServiceConfig::full_mesh(NodeId(0), 2, ElectorKind::OmegaLc);
        let mut node = ServiceNode::new(config);
        let mut ctx = ServiceContext::new(SimInstant::ZERO, NodeId(0), 0);
        let process = node.register_process();
        node.join_group(process, GROUP, JoinConfig::candidate(), &mut ctx)
            .unwrap();
        // A static join arms HELLO/ALIVE/FD/grace timers but no tune timer.
        let effects = ctx.into_effects();
        let tune = TimerTag(4u64 << 32 | GROUP.0 as u64);
        assert!(effects.iter().all(|e| !matches!(
            e,
            sle_sim::Effect::SetTimer { tag, .. } if *tag == tune
        )));
    }

    #[test]
    fn multi_group_alives_share_one_datagram_per_destination() {
        // Two workstations sharing three groups: the per-node tick must
        // coalesce the three per-group heartbeats bound for the same peer
        // into one batched datagram.
        let n = 2;
        let groups = [GroupId(1), GroupId(2), GroupId(3)];
        let mut world: World<ServiceNode, PerfectMedium> = World::new(
            n,
            Box::new(move |node, _inc| {
                let mut config = ServiceConfig::full_mesh(node, n, ElectorKind::OmegaLc);
                for group in groups {
                    config = config.with_auto_join(group, JoinConfig::candidate());
                }
                ServiceNode::new(config)
            }),
            PerfectMedium,
            41,
        );
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_secs(5), &mut obs);
        for i in 0..n {
            let actor = world.actor(NodeId(i as u32)).unwrap();
            let payloads = actor.alive_payloads_sent();
            let datagrams = actor.alive_datagrams_sent();
            assert!(payloads > 0);
            // All three groups join together and share one send interval,
            // so every tick batches exactly three payloads per datagram.
            assert_eq!(
                payloads,
                3 * datagrams,
                "node {i}: {payloads} payloads in {datagrams} datagrams"
            );
            for group in groups {
                assert!(actor.leader_of(group).is_some(), "no leader in {group:?}");
            }
        }
        // Both nodes converge on the same leader in every group.
        for group in groups {
            assert!(agreed_leader(&world, group).is_some());
        }
    }

    #[test]
    fn staggered_group_joins_converge_onto_shared_datagrams() {
        // Group 2 is joined mid-run, out of phase with group 1. The
        // quarter-interval batching slack must pull the two onto a shared
        // tick, so steady-state traffic is 2 payloads per datagram — not
        // one datagram per group forever.
        let n = 2;
        let mut world: World<ServiceNode, PerfectMedium> = World::new(
            n,
            Box::new(move |node, _inc| {
                let config = ServiceConfig::full_mesh(node, n, ElectorKind::OmegaLc)
                    .with_auto_join(GroupId(1), JoinConfig::candidate());
                ServiceNode::new(config)
            }),
            PerfectMedium,
            43,
        );
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_millis(330), &mut obs);
        for i in 0..n as u32 {
            world.with_actor(NodeId(i), &mut obs, |actor, ctx| {
                let process = actor.register_process();
                actor
                    .join_group(process, GroupId(2), JoinConfig::candidate(), ctx)
                    .expect("join group 2");
            });
        }
        // Let the phases converge, then measure a steady-state window.
        world.run_for(SimDuration::from_secs(5), &mut obs);
        let counts = |world: &World<ServiceNode, PerfectMedium>, i: u32| {
            let actor = world.actor(NodeId(i)).unwrap();
            (actor.alive_payloads_sent(), actor.alive_datagrams_sent())
        };
        let before: Vec<_> = (0..n as u32).map(|i| counts(&world, i)).collect();
        world.run_for(SimDuration::from_secs(10), &mut obs);
        for i in 0..n as u32 {
            let (p0, d0) = before[i as usize];
            let (p1, d1) = counts(&world, i);
            let payloads = p1 - p0;
            let datagrams = d1 - d0;
            assert!(payloads > 0);
            // Perfect batching is 2 payloads per datagram; a monitor
            // reconfiguration can briefly desync the two groups' intervals
            // (and so their grids), so allow a handful of solo datagrams.
            assert!(
                payloads * 10 >= 2 * datagrams * 9,
                "node {i}: staggered groups failed to share datagrams \
                 ({payloads} payloads in {datagrams} datagrams)"
            );
        }
        assert!(agreed_leader(&world, GroupId(1)).is_some());
        assert!(agreed_leader(&world, GroupId(2)).is_some());
    }

    #[test]
    fn nodes_in_different_groups_do_not_interfere() {
        // Nodes 0,1 join group 1; nodes 2,3 join group 2.
        let n = 4;
        let mut world: World<ServiceNode, PerfectMedium> = World::new(
            n,
            Box::new(move |node, _inc| {
                let group = if node.0 < 2 { GroupId(1) } else { GroupId(2) };
                let config = ServiceConfig::full_mesh(node, n, ElectorKind::OmegaLc)
                    .with_auto_join(group, JoinConfig::candidate());
                ServiceNode::new(config)
            }),
            PerfectMedium,
            37,
        );
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_secs(5), &mut obs);
        let leader1 = world
            .actor(NodeId(0))
            .unwrap()
            .leader_of(GroupId(1))
            .unwrap();
        let leader2 = world
            .actor(NodeId(2))
            .unwrap()
            .leader_of(GroupId(2))
            .unwrap();
        assert!(leader1.node.0 < 2);
        assert!(leader2.node.0 >= 2);
        assert_eq!(world.actor(NodeId(0)).unwrap().leader_of(GroupId(2)), None);
    }

    /// A minimal fenced state machine for the lease/client-tier tests: a
    /// counter with the canonical high-water fencing check.
    #[derive(Debug, Default)]
    struct TestApp {
        high_water: Option<crate::lease::FencingToken>,
        value: u64,
    }

    impl crate::lease::FencedApp for TestApp {
        fn apply(
            &mut self,
            _group: GroupId,
            token: crate::lease::FencingToken,
            payload: u64,
        ) -> Result<u64, crate::lease::StaleToken> {
            if let Some(high) = self.high_water {
                if token < high {
                    return Err(crate::lease::StaleToken {
                        presented: token,
                        high_water: high,
                    });
                }
            }
            self.high_water = Some(token);
            self.value += payload;
            Ok(self.value)
        }

        fn observe_token(&mut self, _group: GroupId, token: crate::lease::FencingToken) {
            if self.high_water.is_none_or(|high| token > high) {
                self.high_water = Some(token);
            }
        }
    }

    #[test]
    fn leader_serves_fenced_requests_and_followers_redirect() {
        let mut world = build_world(2, ElectorKind::OmegaLc, 61);
        let mut obs = NullObserver;
        for i in 0..2u32 {
            world.with_actor(NodeId(i), &mut obs, |actor, _ctx| {
                actor.install_app(Box::new(TestApp::default()));
                assert!(actor.has_app());
            });
        }
        world.run_for(SimDuration::from_secs(5), &mut obs);
        let leader = agreed_leader(&world, GROUP).expect("agreed leader").node;
        let follower = NodeId(1 - leader.0);

        world.with_actor(leader, &mut obs, |actor, ctx| {
            let lease = actor.lease_of(GROUP).expect("the leader holds a lease");
            assert_eq!(lease.token.node, leader);
            assert!(lease.valid_at(ctx.now()), "lease expired while leading");
            assert_eq!(actor.fencing_token(GROUP), Some(lease.token));
            assert!(actor.leases_minted() >= 1);
            // A client request lands on the leader: served.
            actor.on_message(
                follower,
                ServiceMessage::ClientRequest {
                    group: GROUP,
                    session: 1,
                    seq: 0,
                    payload: 7,
                },
                ctx,
            );
            assert_eq!(actor.client_requests_applied(), 1);
            assert_eq!(actor.client_requests_redirected(), 0);
        });

        world.with_actor(follower, &mut obs, |actor, ctx| {
            // The follower holds no lease of its own…
            assert_eq!(actor.lease_of(GROUP), None);
            // …but has heard the leader's LeaseGrant broadcasts.
            let remote = actor
                .remote_lease_of(GROUP)
                .expect("LeaseGrant broadcasts reached the follower");
            assert_eq!(remote.token.node, leader);
            // A client request landing on the follower is redirected to the
            // leader it knows about.
            actor.on_message(
                leader,
                ServiceMessage::ClientRequest {
                    group: GROUP,
                    session: 2,
                    seq: 0,
                    payload: 7,
                },
                ctx,
            );
            assert_eq!(actor.client_requests_applied(), 0);
            assert_eq!(actor.client_requests_redirected(), 1);
            // Unknown group: redirected with no hint (leader unknown).
            actor.on_message(
                leader,
                ServiceMessage::ClientRequest {
                    group: GroupId(99),
                    session: 2,
                    seq: 1,
                    payload: 7,
                },
                ctx,
            );
            assert_eq!(actor.client_requests_redirected(), 2);
        });
    }

    #[test]
    fn replayed_stale_accusation_is_ignored_after_elector_recreation() {
        // Node 2 joins as a listener; its elector life later restarts when
        // it upgrades to candidate (the join_group recreation site). An
        // ACCUSE minted against the pre-upgrade elector life must not be
        // honoured by the recreated one.
        let n = 3;
        let mut world: World<ServiceNode, PerfectMedium> = World::new(
            n,
            Box::new(move |node, _inc| {
                let join = if node == NodeId(2) {
                    JoinConfig::listener()
                } else {
                    JoinConfig::candidate()
                };
                let config = ServiceConfig::full_mesh(node, n, ElectorKind::OmegaL)
                    .with_auto_join(GROUP, join);
                ServiceNode::new(config)
            }),
            PerfectMedium,
            67,
        );
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_secs(5), &mut obs);
        let before = agreed_leader(&world, GROUP).expect("settled leader");
        assert_ne!(before.node, NodeId(2));

        // Upgrade node 2 to candidate: the elector is recreated with an
        // epoch floor above everything its previous life advertised.
        world.with_actor(NodeId(2), &mut obs, |actor, ctx| {
            let process = actor.register_process();
            actor
                .join_group(process, GROUP, JoinConfig::candidate(), ctx)
                .expect("upgrade to candidate");
            // Replay a duplicated stale ACCUSE from the pre-upgrade life
            // (epoch 0 was current before the recreation). Both copies must
            // be dropped by the stale-epoch guard.
            for _ in 0..2 {
                actor.on_message(
                    NodeId(0),
                    ServiceMessage::Accuse {
                        group: GROUP,
                        epoch: 0,
                    },
                    ctx,
                );
            }
            assert_eq!(actor.stale_accusations_ignored(), 2);
        });

        // The replays must not have perturbed the election: the settled
        // leader is still in office after another settling period.
        world.run_for(SimDuration::from_secs(5), &mut obs);
        let after = agreed_leader(&world, GROUP).expect("leader after replay");
        assert_eq!(after, before, "a replayed stale ACCUSE changed leadership");
    }

    /// One leader-change announcement, as plain comparable data:
    /// `(virtual ns, observing node, group, leader as (node, local))`.
    type LeaderTraceEvent = (u64, u32, u32, Option<(u32, u32)>);

    /// Records every leader-change announcement as plain data, for
    /// comparing two runs event-for-event.
    #[derive(Debug, Default)]
    struct LeaderTrace {
        events: Vec<LeaderTraceEvent>,
    }

    impl Observer<ServiceEvent> for LeaderTrace {
        fn event_emitted(&mut self, now: SimInstant, node: NodeId, event: &ServiceEvent) {
            let ServiceEvent::LeaderChanged { group, leader } = event;
            self.events.push((
                now.as_nanos(),
                node.0,
                group.0,
                leader.map(|p| (p.node.0, p.local)),
            ));
        }
    }

    fn crash_recover_trace(seed: u64) -> Vec<LeaderTraceEvent> {
        let n = 5;
        let medium = sle_net::network::NetworkModel::new(
            sle_net::link::LinkSpec::from_paper_tuple(10.0, 0.01),
        )
        .build(seed);
        let mut world: World<ServiceNode, sle_net::network::SimulatedNetwork> = World::new(
            n,
            Box::new(move |node, _inc| {
                let config = ServiceConfig::full_mesh(node, n, ElectorKind::OmegaL)
                    .with_auto_join(GROUP, JoinConfig::candidate());
                ServiceNode::new(config)
            }),
            medium,
            seed,
        );
        let mut obs = LeaderTrace::default();
        world.schedule_crash(NodeId(1), SimInstant::from_secs_f64(4.0));
        world.schedule_recovery(NodeId(1), SimInstant::from_secs_f64(9.0));
        world.schedule_crash(NodeId(3), SimInstant::from_secs_f64(12.0));
        world.run_for(SimDuration::from_secs(20), &mut obs);
        obs.events
    }

    #[test]
    fn crash_recover_runs_are_seed_deterministic() {
        // The dense tables iterate in interned-slot or sorted-id order, not
        // tree order; a lossy medium plus crash/recover churn exercises all
        // of them. Two runs from one seed must announce the identical
        // leader-change sequence, timestamp for timestamp.
        let first = crash_recover_trace(0xD5);
        let second = crash_recover_trace(0xD5);
        assert!(
            !first.is_empty(),
            "the scenario must produce leader changes"
        );
        assert_eq!(
            first, second,
            "same seed must replay the identical leader-change trace"
        );
    }

    #[test]
    fn group_churn_keeps_monitor_arena_at_baseline() {
        // Two workstations share one long-lived group; a second group on
        // the same pair is joined and left repeatedly. The shared liveness
        // arena must keep exactly one record per contacted peer throughout:
        // churn neither leaks records nor reclaims the estimate the
        // long-lived group (and the node's own cached handle) still uses.
        let n = 2u32;
        let mut world = build_world(n as usize, ElectorKind::OmegaLc, 71);
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_secs(2), &mut obs);
        let baseline: Vec<usize> = (0..n)
            .map(|i| world.actor(NodeId(i)).unwrap().monitored_peer_count())
            .collect();
        assert!(
            baseline.iter().all(|&count| count == 1),
            "each node tracks exactly its one peer: {baseline:?}"
        );
        let churn = GroupId(50);
        for round in 0..10 {
            for i in 0..n {
                world.with_actor(NodeId(i), &mut obs, |actor, ctx| {
                    let process = actor.register_process();
                    actor
                        .join_group(process, churn, JoinConfig::candidate(), ctx)
                        .expect("join churn group");
                });
            }
            world.run_for(SimDuration::from_millis(400), &mut obs);
            for i in 0..n {
                world.with_actor(NodeId(i), &mut obs, |actor, ctx| {
                    for process in actor.local_members_of(churn) {
                        actor
                            .leave_group(process, churn, ctx)
                            .expect("leave churn group");
                    }
                });
            }
            world.run_for(SimDuration::from_millis(100), &mut obs);
            for i in 0..n {
                let count = world.actor(NodeId(i)).unwrap().monitored_peer_count();
                assert_eq!(
                    count, baseline[i as usize],
                    "round {round}: node {i} arena record count drifted"
                );
            }
        }
    }
}
