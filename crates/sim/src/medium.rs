//! The transmission medium abstraction.
//!
//! The simulator asks the medium what happens to every message an actor
//! sends: is it dropped, and if not, how long does it take to arrive?
//! Concrete link models (lossy links, crash-prone links, full-mesh
//! topologies with per-link parameters) live in the `sle-net` crate; the
//! simulator only depends on this small trait.

use crate::actor::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimInstant};

/// The fate of a transmitted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The message is lost and never delivered.
    Dropped,
    /// The message is delivered after `delay`.
    Deliver {
        /// Transmission delay from send to delivery.
        delay: SimDuration,
    },
}

impl Verdict {
    /// Convenience constructor for an immediate (zero-delay) delivery.
    pub fn immediate() -> Verdict {
        Verdict::Deliver {
            delay: SimDuration::ZERO,
        }
    }

    /// Returns true if the message is delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, Verdict::Deliver { .. })
    }
}

/// The full fate of a transmitted message, including duplication.
///
/// [`Verdict`] can only express "lost" or "delivered once"; real networks
/// also *duplicate* datagrams (a retransmitting switch, a routing loop).
/// Media that model duplication implement [`Medium::transmit_fate`] and
/// return [`Fate::DeliverTwice`]; everything else keeps implementing
/// [`Medium::transmit`] and gets the equivalent single-delivery fate for
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The message is lost and never delivered.
    Dropped,
    /// The message is delivered exactly once after `delay`.
    Deliver {
        /// Transmission delay from send to delivery.
        delay: SimDuration,
    },
    /// The network duplicated the message: two independent copies arrive.
    DeliverTwice {
        /// Delay of the first copy.
        first: SimDuration,
        /// Delay of the second copy (may be smaller than `first`, in which
        /// case the duplicate also reorders).
        second: SimDuration,
    },
}

impl Fate {
    /// Returns true if at least one copy is delivered.
    pub fn is_delivered(&self) -> bool {
        !matches!(self, Fate::Dropped)
    }

    /// Number of copies delivered (0, 1 or 2).
    pub fn copies(&self) -> usize {
        match self {
            Fate::Dropped => 0,
            Fate::Deliver { .. } => 1,
            Fate::DeliverTwice { .. } => 2,
        }
    }

    /// The delay of the first delivered copy, or `None` if dropped.
    pub fn first_delay(&self) -> Option<SimDuration> {
        match self {
            Fate::Dropped => None,
            Fate::Deliver { delay } | Fate::DeliverTwice { first: delay, .. } => Some(*delay),
        }
    }
}

impl From<Verdict> for Fate {
    fn from(v: Verdict) -> Fate {
        match v {
            Verdict::Dropped => Fate::Dropped,
            Verdict::Deliver { delay } => Fate::Deliver { delay },
        }
    }
}

/// Collapses a fate to the single-delivery view: duplication reduces to the
/// first copy.
impl From<Fate> for Verdict {
    fn from(fate: Fate) -> Verdict {
        match fate.first_delay() {
            None => Verdict::Dropped,
            Some(delay) => Verdict::Deliver { delay },
        }
    }
}

/// Decides the fate of every message sent through the simulated network.
///
/// Implementations may keep per-link state (e.g. whether a link is currently
/// "crashed") and advance it lazily using `now`.
pub trait Medium {
    /// Decides what happens to a `wire_bytes`-byte message sent from `from`
    /// to `to` at time `now`.
    fn transmit(
        &mut self,
        now: SimInstant,
        from: NodeId,
        to: NodeId,
        wire_bytes: usize,
        rng: &mut SimRng,
    ) -> Verdict;

    /// Decides the full fate (including duplication) of a message.
    ///
    /// The default implementation delegates to [`Medium::transmit`], so only
    /// media that model duplication need to override it. The simulator's
    /// event loop calls this method, never `transmit` directly.
    fn transmit_fate(
        &mut self,
        now: SimInstant,
        from: NodeId,
        to: NodeId,
        wire_bytes: usize,
        rng: &mut SimRng,
    ) -> Fate {
        self.transmit(now, from, to, wire_bytes, rng).into()
    }

    /// A lower bound on the delay of every delivered copy of every message,
    /// over the whole run and every `(from, to)` pair.
    ///
    /// This is the *lookahead* of a conservative parallel simulation (see
    /// [`par`](crate::par)): within a window of this width, no shard can
    /// receive a message sent inside the same window, so shards may advance
    /// through it independently. The bound must be conservative — returning
    /// a value larger than some actual delay breaks causality in the
    /// parallel driver; returning a smaller one only costs speed. The
    /// default, [`SimDuration::ZERO`], is always safe and makes the parallel
    /// driver fall back to sequential canonical-order execution.
    fn min_delay(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// A medium that delivers every message instantly. Useful for unit tests of
/// protocol logic where the network is not under study.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectMedium;

impl Medium for PerfectMedium {
    fn transmit(
        &mut self,
        _now: SimInstant,
        _from: NodeId,
        _to: NodeId,
        _wire_bytes: usize,
        _rng: &mut SimRng,
    ) -> Verdict {
        Verdict::immediate()
    }
}

/// A medium with a fixed delivery delay and no losses. Useful for tests that
/// need deterministic, non-zero latencies.
#[derive(Debug, Clone, Copy)]
pub struct FixedDelayMedium {
    delay: SimDuration,
}

impl FixedDelayMedium {
    /// Creates a medium that delivers every message after exactly `delay`.
    pub fn new(delay: SimDuration) -> Self {
        FixedDelayMedium { delay }
    }

    /// The configured delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }
}

impl Medium for FixedDelayMedium {
    fn transmit(
        &mut self,
        _now: SimInstant,
        _from: NodeId,
        _to: NodeId,
        _wire_bytes: usize,
        _rng: &mut SimRng,
    ) -> Verdict {
        Verdict::Deliver { delay: self.delay }
    }

    fn min_delay(&self) -> SimDuration {
        self.delay
    }
}

/// A medium whose (deterministic, loss-free) delivery delay changes at
/// scheduled instants — the simplest possible drifting network, used to
/// observe adaptation to latency regime shifts without any stochastic noise.
///
/// ```
/// use sle_sim::medium::{Medium, SteppedDelayMedium, Verdict};
/// use sle_sim::actor::NodeId;
/// use sle_sim::rng::SimRng;
/// use sle_sim::time::{SimDuration, SimInstant};
///
/// let mut medium = SteppedDelayMedium::new(SimDuration::from_millis(50))
///     .with_step(SimInstant::from_secs_f64(10.0), SimDuration::from_millis(5));
/// let mut rng = SimRng::seed_from(1);
/// let early = medium.transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 10, &mut rng);
/// assert_eq!(early, Verdict::Deliver { delay: SimDuration::from_millis(50) });
/// let late = medium.transmit(SimInstant::from_secs_f64(11.0), NodeId(0), NodeId(1), 10, &mut rng);
/// assert_eq!(late, Verdict::Deliver { delay: SimDuration::from_millis(5) });
/// ```
#[derive(Debug, Clone)]
pub struct SteppedDelayMedium {
    steps: crate::timeline::Timeline<SimDuration>,
}

impl SteppedDelayMedium {
    /// Creates a medium delivering every message after `initial` delay.
    pub fn new(initial: SimDuration) -> Self {
        SteppedDelayMedium {
            steps: crate::timeline::Timeline::new(initial),
        }
    }

    /// Switches the delivery delay to `delay` from `at` onwards.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not later than the previous step.
    pub fn with_step(mut self, at: SimInstant, delay: SimDuration) -> Self {
        self.steps = self.steps.then_at(at, delay);
        self
    }

    /// The delay in force at `now`.
    pub fn delay_at(&self, now: SimInstant) -> SimDuration {
        self.steps.at(now)
    }
}

impl Medium for SteppedDelayMedium {
    fn transmit(
        &mut self,
        now: SimInstant,
        _from: NodeId,
        _to: NodeId,
        _wire_bytes: usize,
        _rng: &mut SimRng,
    ) -> Verdict {
        Verdict::Deliver {
            delay: self.delay_at(now),
        }
    }

    fn min_delay(&self) -> SimDuration {
        self.steps
            .phases()
            .iter()
            .map(|&(_, d)| d)
            .fold(SimDuration::MAX, SimDuration::min)
    }
}

impl<M: Medium + ?Sized> Medium for Box<M> {
    fn transmit(
        &mut self,
        now: SimInstant,
        from: NodeId,
        to: NodeId,
        wire_bytes: usize,
        rng: &mut SimRng,
    ) -> Verdict {
        (**self).transmit(now, from, to, wire_bytes, rng)
    }

    fn transmit_fate(
        &mut self,
        now: SimInstant,
        from: NodeId,
        to: NodeId,
        wire_bytes: usize,
        rng: &mut SimRng,
    ) -> Fate {
        (**self).transmit_fate(now, from, to, wire_bytes, rng)
    }

    fn min_delay(&self) -> SimDuration {
        (**self).min_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_medium_always_delivers_instantly() {
        let mut m = PerfectMedium;
        let mut rng = SimRng::seed_from(1);
        let v = m.transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 100, &mut rng);
        assert_eq!(
            v,
            Verdict::Deliver {
                delay: SimDuration::ZERO
            }
        );
        assert!(v.is_delivered());
    }

    #[test]
    fn fixed_delay_medium_uses_configured_delay() {
        let mut m = FixedDelayMedium::new(SimDuration::from_millis(20));
        assert_eq!(m.delay(), SimDuration::from_millis(20));
        let mut rng = SimRng::seed_from(1);
        match m.transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 1, &mut rng) {
            Verdict::Deliver { delay } => assert_eq!(delay, SimDuration::from_millis(20)),
            Verdict::Dropped => panic!("fixed delay medium must not drop"),
        }
    }

    #[test]
    fn boxed_medium_dispatches() {
        let mut m: Box<dyn Medium> = Box::new(PerfectMedium);
        let mut rng = SimRng::seed_from(1);
        assert!(m
            .transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 1, &mut rng)
            .is_delivered());
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::immediate().is_delivered());
        assert!(!Verdict::Dropped.is_delivered());
    }

    #[test]
    fn fate_helpers_and_conversion() {
        assert_eq!(Fate::Dropped.copies(), 0);
        assert!(!Fate::Dropped.is_delivered());
        let once = Fate::from(Verdict::immediate());
        assert_eq!(
            once,
            Fate::Deliver {
                delay: SimDuration::ZERO
            }
        );
        assert_eq!(once.copies(), 1);
        let twice = Fate::DeliverTwice {
            first: SimDuration::from_millis(1),
            second: SimDuration::from_millis(2),
        };
        assert!(twice.is_delivered());
        assert_eq!(twice.copies(), 2);
    }

    /// A medium that duplicates every message, used to exercise the
    /// default-vs-overridden `transmit_fate` path.
    struct AlwaysDuplicate;

    impl Medium for AlwaysDuplicate {
        fn transmit(
            &mut self,
            _now: SimInstant,
            _from: NodeId,
            _to: NodeId,
            _wire_bytes: usize,
            _rng: &mut SimRng,
        ) -> Verdict {
            Verdict::immediate()
        }

        fn transmit_fate(
            &mut self,
            _now: SimInstant,
            _from: NodeId,
            _to: NodeId,
            _wire_bytes: usize,
            _rng: &mut SimRng,
        ) -> Fate {
            Fate::DeliverTwice {
                first: SimDuration::ZERO,
                second: SimDuration::from_millis(1),
            }
        }
    }

    #[test]
    fn default_transmit_fate_delegates_and_overrides_stick_through_box() {
        let mut rng = SimRng::seed_from(1);
        let mut plain = PerfectMedium;
        assert_eq!(
            plain.transmit_fate(SimInstant::ZERO, NodeId(0), NodeId(1), 1, &mut rng),
            Fate::Deliver {
                delay: SimDuration::ZERO
            }
        );
        let mut boxed: Box<dyn Medium> = Box::new(AlwaysDuplicate);
        assert_eq!(
            boxed
                .transmit_fate(SimInstant::ZERO, NodeId(0), NodeId(1), 1, &mut rng)
                .copies(),
            2
        );
    }

    #[test]
    fn stepped_medium_switches_delay_at_the_scheduled_instants() {
        let medium = SteppedDelayMedium::new(SimDuration::from_millis(40))
            .with_step(SimInstant::from_secs_f64(1.0), SimDuration::from_millis(10))
            .with_step(SimInstant::from_secs_f64(2.0), SimDuration::from_millis(80));
        assert_eq!(
            medium.delay_at(SimInstant::ZERO),
            SimDuration::from_millis(40)
        );
        assert_eq!(
            medium.delay_at(SimInstant::from_secs_f64(1.0)),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            medium.delay_at(SimInstant::from_secs_f64(1.5)),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            medium.delay_at(SimInstant::from_secs_f64(3.0)),
            SimDuration::from_millis(80)
        );
    }

    #[test]
    fn min_delay_is_the_conservative_lookahead_bound() {
        assert_eq!(PerfectMedium.min_delay(), SimDuration::ZERO);
        assert_eq!(
            FixedDelayMedium::new(SimDuration::from_millis(3)).min_delay(),
            SimDuration::from_millis(3)
        );
        let stepped = SteppedDelayMedium::new(SimDuration::from_millis(40))
            .with_step(SimInstant::from_secs_f64(1.0), SimDuration::from_millis(10))
            .with_step(SimInstant::from_secs_f64(2.0), SimDuration::from_millis(80));
        assert_eq!(stepped.min_delay(), SimDuration::from_millis(10));
        // Custom media inherit the always-safe zero bound; boxing forwards.
        assert_eq!(AlwaysDuplicate.min_delay(), SimDuration::ZERO);
        let boxed: Box<dyn Medium> = Box::new(FixedDelayMedium::new(SimDuration::from_millis(7)));
        assert_eq!(boxed.min_delay(), SimDuration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn stepped_medium_rejects_out_of_order_steps() {
        let _ = SteppedDelayMedium::new(SimDuration::ZERO)
            .with_step(SimInstant::from_secs_f64(2.0), SimDuration::ZERO)
            .with_step(SimInstant::from_secs_f64(1.0), SimDuration::ZERO);
    }
}
