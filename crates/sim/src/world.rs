//! The discrete-event simulation engine.
//!
//! A [`World`] owns a set of nodes (each running one [`Actor`], here the
//! leader-election `ServiceNode`), a [`Medium`] deciding the fate of every
//! message, a virtual clock and a deterministic RNG. Node crashes and
//! recoveries — the "module that simulates the crashes and recoveries of
//! workstations" of the paper's Section 6.1 — are injected by scheduling
//! [`World::schedule_crash`] / [`World::schedule_recovery`] events, exactly
//! like the authors killed and restarted service instances.
//!
//! The engine is fully deterministic: two worlds constructed with the same
//! actors, medium, schedule and seed produce identical executions.

use crate::actor::{Actor, Context, Effect, NodeId, TimerTag, WireSize};
use crate::dense::TagMap;
use crate::medium::{Fate, Medium};
use crate::observer::Observer;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimInstant};
use crate::wheel::EventWheel;

/// Builds (or rebuilds, after a recovery) the actor for a node.
///
/// The second argument is the incarnation number: 0 for the initial start and
/// incremented by one on every recovery, so protocol code can distinguish
/// state from previous lives of the same workstation.
pub type ActorFactory<A> = Box<dyn FnMut(NodeId, u64) -> A>;

/// The event vocabulary shared by the sequential [`World`] and the sharded
/// parallel driver in [`par`](crate::par): both queues hold the same kinds
/// and dispatch them through the same per-node state transitions.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    Start {
        node: NodeId,
    },
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        bytes: usize,
    },
    Timer {
        node: NodeId,
        tag: TimerTag,
        node_epoch: u64,
        generation: u64,
    },
    Crash {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
}

pub(crate) struct NodeSlot<A> {
    pub(crate) actor: Option<A>,
    pub(crate) up: bool,
    pub(crate) incarnation: u64,
    /// Bumped on every crash so stale timer events are discarded.
    pub(crate) epoch: u64,
    /// Per-tag generation counters; a timer event only fires if its recorded
    /// generation still matches. Keyed by the raw tag value in a dense
    /// open-addressing map — this table is touched on every arm/cancel/fire.
    pub(crate) timers: TagMap,
    pub(crate) timer_generation: u64,
}

impl<A> NodeSlot<A> {
    pub(crate) fn new(actor: A) -> Self {
        NodeSlot {
            actor: Some(actor),
            up: true,
            incarnation: 0,
            epoch: 0,
            timers: TagMap::new(),
            timer_generation: 0,
        }
    }
}

/// The discrete-event simulator driving a set of actors.
pub struct World<A: Actor, M: Medium> {
    now: SimInstant,
    seq: u64,
    queue: EventWheel<EventKind<A::Msg>>,
    nodes: Vec<NodeSlot<A>>,
    factory: ActorFactory<A>,
    medium: M,
    rng: SimRng,
    events_processed: u64,
}

impl<A: Actor, M: Medium> World<A, M> {
    /// Creates a world with `num_nodes` nodes, all initially up.
    ///
    /// Every node's actor is built by `factory` and receives its `on_start`
    /// callback at time zero (in node-id order).
    pub fn new(num_nodes: usize, mut factory: ActorFactory<A>, medium: M, seed: u64) -> Self {
        let mut nodes = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            let actor = factory(NodeId(i as u32), 0);
            nodes.push(NodeSlot::new(actor));
        }
        let mut world = World {
            now: SimInstant::ZERO,
            seq: 0,
            queue: EventWheel::new(),
            nodes,
            factory,
            medium,
            rng: SimRng::seed_from(seed),
            events_processed: 0,
        };
        for i in 0..num_nodes {
            world.push(
                SimInstant::ZERO,
                EventKind::Start {
                    node: NodeId(i as u32),
                },
            );
        }
        world
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Number of nodes in the world.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Returns whether `node` is currently up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.nodes[node.index()].up
    }

    /// Returns the current incarnation of `node`.
    pub fn incarnation(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].incarnation
    }

    /// Immutable access to the actor of `node`, if the node is up.
    pub fn actor(&self, node: NodeId) -> Option<&A> {
        let slot = &self.nodes[node.index()];
        if slot.up {
            slot.actor.as_ref()
        } else {
            None
        }
    }

    /// Mutable access to the actor of `node`, if the node is up.
    ///
    /// Intended for test instrumentation and the experiment harness (e.g.
    /// issuing join/leave commands); protocol interactions should go through
    /// messages and timers.
    pub fn actor_mut(&mut self, node: NodeId) -> Option<&mut A> {
        let slot = &mut self.nodes[node.index()];
        if slot.up {
            slot.actor.as_mut()
        } else {
            None
        }
    }

    /// Access to the medium (e.g. to reconfigure link parameters mid-run).
    pub fn medium_mut(&mut self) -> &mut M {
        &mut self.medium
    }

    /// Schedules a crash of `node` at absolute time `at`.
    ///
    /// Crashing an already-crashed node is a no-op at processing time.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimInstant) {
        self.push(at, EventKind::Crash { node });
    }

    /// Schedules a recovery of `node` at absolute time `at`.
    ///
    /// Recovering an already-up node is a no-op at processing time.
    pub fn schedule_recovery(&mut self, node: NodeId, at: SimInstant) {
        self.push(at, EventKind::Recover { node });
    }

    /// Runs the simulation until virtual time `deadline`, reporting everything
    /// to `observer`. Events scheduled exactly at `deadline` are processed.
    pub fn run_until<O: Observer<A::Event>>(&mut self, deadline: SimInstant, observer: &mut O) {
        while let Some(next_at) = self.peek_time() {
            if next_at > deadline {
                break;
            }
            self.step(observer);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs the simulation for `span` of virtual time from the current clock.
    pub fn run_for<O: Observer<A::Event>>(&mut self, span: SimDuration, observer: &mut O) {
        let deadline = self.now + span;
        self.run_until(deadline, observer);
    }

    /// Processes a single event. Returns `false` if the queue is empty.
    pub fn step<O: Observer<A::Event>>(&mut self, observer: &mut O) -> bool {
        let (at, _seq, kind) = match self.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(at >= self.now, "time must not go backwards");
        self.now = at;
        self.events_processed += 1;
        match kind {
            EventKind::Start { node } => self.handle_start(node, observer),
            EventKind::Deliver {
                from,
                to,
                msg,
                bytes,
            } => self.handle_deliver(from, to, msg, bytes, observer),
            EventKind::Timer {
                node,
                tag,
                node_epoch,
                generation,
            } => self.handle_timer(node, tag, node_epoch, generation, observer),
            EventKind::Crash { node } => self.handle_crash(node, observer),
            EventKind::Recover { node } => self.handle_recover(node, observer),
        }
        true
    }

    /// Applies a closure to a live actor through the same effect-processing
    /// path as message and timer callbacks. This is how the harness issues
    /// API commands (register, join group, leave group) to service nodes.
    pub fn with_actor<O, F>(&mut self, node: NodeId, observer: &mut O, f: F)
    where
        O: Observer<A::Event>,
        F: FnOnce(&mut A, &mut Context<A::Msg, A::Event>),
    {
        let slot = &mut self.nodes[node.index()];
        if !slot.up {
            return;
        }
        let incarnation = slot.incarnation;
        let mut ctx = Context::new(self.now, node, incarnation);
        if let Some(actor) = slot.actor.as_mut() {
            f(actor, &mut ctx);
        }
        let effects = ctx.into_effects();
        self.apply_effects(node, effects, observer);
    }

    fn peek_time(&mut self) -> Option<SimInstant> {
        self.queue.peek_time()
    }

    fn push(&mut self, at: SimInstant, kind: EventKind<A::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
    }

    fn handle_start<O: Observer<A::Event>>(&mut self, node: NodeId, observer: &mut O) {
        let slot = &mut self.nodes[node.index()];
        if !slot.up {
            return;
        }
        let incarnation = slot.incarnation;
        let mut ctx = Context::new(self.now, node, incarnation);
        if let Some(actor) = slot.actor.as_mut() {
            actor.on_start(&mut ctx);
        }
        let effects = ctx.into_effects();
        self.apply_effects(node, effects, observer);
    }

    fn handle_deliver<O: Observer<A::Event>>(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: A::Msg,
        bytes: usize,
        observer: &mut O,
    ) {
        let slot = &mut self.nodes[to.index()];
        if !slot.up {
            observer.message_dropped(self.now, from, to, bytes);
            return;
        }
        observer.message_delivered(self.now, from, to, bytes);
        let incarnation = slot.incarnation;
        let mut ctx = Context::new(self.now, to, incarnation);
        if let Some(actor) = slot.actor.as_mut() {
            actor.on_message(from, msg, &mut ctx);
        }
        let effects = ctx.into_effects();
        self.apply_effects(to, effects, observer);
    }

    fn handle_timer<O: Observer<A::Event>>(
        &mut self,
        node: NodeId,
        tag: TimerTag,
        node_epoch: u64,
        generation: u64,
        observer: &mut O,
    ) {
        let slot = &mut self.nodes[node.index()];
        if !slot.up || slot.epoch != node_epoch {
            return;
        }
        match slot.timers.get(tag.0) {
            Some(g) if g == generation => {}
            _ => return, // re-armed or cancelled since this event was queued
        }
        slot.timers.remove(tag.0);
        observer.timer_fired(self.now, node);
        let incarnation = slot.incarnation;
        let mut ctx = Context::new(self.now, node, incarnation);
        if let Some(actor) = slot.actor.as_mut() {
            actor.on_timer(tag, &mut ctx);
        }
        let effects = ctx.into_effects();
        self.apply_effects(node, effects, observer);
    }

    fn handle_crash<O: Observer<A::Event>>(&mut self, node: NodeId, observer: &mut O) {
        let slot = &mut self.nodes[node.index()];
        if !slot.up {
            return;
        }
        slot.up = false;
        slot.actor = None;
        slot.epoch += 1;
        slot.timers.clear();
        observer.node_crashed(self.now, node);
    }

    fn handle_recover<O: Observer<A::Event>>(&mut self, node: NodeId, observer: &mut O) {
        {
            let slot = &mut self.nodes[node.index()];
            if slot.up {
                return;
            }
            slot.up = true;
            slot.incarnation += 1;
        }
        let incarnation = self.nodes[node.index()].incarnation;
        let actor = (self.factory)(node, incarnation);
        self.nodes[node.index()].actor = Some(actor);
        observer.node_recovered(self.now, node, incarnation);
        self.handle_start(node, observer);
    }

    fn apply_effects<O: Observer<A::Event>>(
        &mut self,
        node: NodeId,
        effects: Vec<Effect<A::Msg, A::Event>>,
        observer: &mut O,
    ) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    let bytes = msg.wire_size();
                    observer.message_sent(self.now, node, to, bytes);
                    if to.index() >= self.nodes.len() {
                        // Destination unknown to this world: treated as lost.
                        observer.message_dropped(self.now, node, to, bytes);
                        continue;
                    }
                    match self
                        .medium
                        .transmit_fate(self.now, node, to, bytes, &mut self.rng)
                    {
                        Fate::Dropped => observer.message_dropped(self.now, node, to, bytes),
                        Fate::Deliver { delay } => {
                            let at = self.now + delay;
                            self.push(
                                at,
                                EventKind::Deliver {
                                    from: node,
                                    to,
                                    msg,
                                    bytes,
                                },
                            );
                        }
                        Fate::DeliverTwice { first, second } => {
                            self.push(
                                self.now + first,
                                EventKind::Deliver {
                                    from: node,
                                    to,
                                    msg: msg.clone(),
                                    bytes,
                                },
                            );
                            self.push(
                                self.now + second,
                                EventKind::Deliver {
                                    from: node,
                                    to,
                                    msg,
                                    bytes,
                                },
                            );
                        }
                    }
                }
                Effect::SetTimer { tag, at } => {
                    let slot = &mut self.nodes[node.index()];
                    slot.timer_generation += 1;
                    let generation = slot.timer_generation;
                    slot.timers.insert(tag.0, generation);
                    let node_epoch = slot.epoch;
                    let fire_at = at.max(self.now);
                    self.push(
                        fire_at,
                        EventKind::Timer {
                            node,
                            tag,
                            node_epoch,
                            generation,
                        },
                    );
                }
                Effect::CancelTimer { tag } => {
                    self.nodes[node.index()].timers.remove(tag.0);
                }
                Effect::Emit(event) => {
                    observer.event_emitted(self.now, node, &event);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::{FixedDelayMedium, PerfectMedium, Verdict};
    use crate::observer::{CountingObserver, NullObserver};

    /// A small test actor: pings its successor every 100 ms and counts pongs.
    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping(u64),
        Pong(u64),
    }

    impl WireSize for TestMsg {
        fn wire_size(&self) -> usize {
            9
        }
    }

    struct PingActor {
        id: NodeId,
        n: u32,
        pings_sent: u64,
        pongs_received: u64,
        incarnation: u64,
    }

    const TICK: TimerTag = TimerTag(1);

    impl Actor for PingActor {
        type Msg = TestMsg;
        type Event = String;

        fn on_start(&mut self, ctx: &mut Context<TestMsg, String>) {
            self.incarnation = ctx.incarnation();
            ctx.set_timer_after(TICK, SimDuration::from_millis(100));
        }

        fn on_message(&mut self, from: NodeId, msg: TestMsg, ctx: &mut Context<TestMsg, String>) {
            match msg {
                TestMsg::Ping(n) => ctx.send(from, TestMsg::Pong(n)),
                TestMsg::Pong(_) => {
                    self.pongs_received += 1;
                    ctx.emit(format!("pong at {}", ctx.now()));
                }
            }
        }

        fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<TestMsg, String>) {
            assert_eq!(tag, TICK);
            let next = NodeId((self.id.0 + 1) % self.n);
            self.pings_sent += 1;
            ctx.send(next, TestMsg::Ping(self.pings_sent));
            ctx.set_timer_after(TICK, SimDuration::from_millis(100));
        }
    }

    fn make_world(n: u32) -> World<PingActor, PerfectMedium> {
        World::new(
            n as usize,
            Box::new(move |id, inc| PingActor {
                id,
                n,
                pings_sent: 0,
                pongs_received: 0,
                incarnation: inc,
            }),
            PerfectMedium,
            42,
        )
    }

    #[test]
    fn actors_exchange_messages_over_virtual_time() {
        let mut world = make_world(3);
        let mut obs = CountingObserver::new();
        world.run_for(SimDuration::from_secs(1), &mut obs);
        // Each of 3 actors pings 10 times in 1s => 30 pings + 30 pongs sent.
        assert_eq!(obs.sent, 60);
        assert_eq!(obs.delivered, 60);
        assert_eq!(obs.dropped, 0);
        assert_eq!(obs.events, 30);
        let a = world.actor(NodeId(0)).unwrap();
        assert_eq!(a.pings_sent, 10);
        assert_eq!(a.pongs_received, 10);
        assert_eq!(world.now(), SimInstant::from_secs_f64(1.0));
    }

    #[test]
    fn crash_discards_state_and_recovery_restarts_fresh() {
        let mut world = make_world(2);
        let mut obs = CountingObserver::new();
        world.schedule_crash(NodeId(1), SimInstant::from_secs_f64(0.45));
        world.schedule_recovery(NodeId(1), SimInstant::from_secs_f64(0.75));
        world.run_for(SimDuration::from_secs(1), &mut obs);

        assert_eq!(obs.crashes, 1);
        assert_eq!(obs.recoveries, 1);
        assert!(world.is_up(NodeId(1)));
        assert_eq!(world.incarnation(NodeId(1)), 1);
        let n1 = world.actor(NodeId(1)).unwrap();
        // Fresh actor after recovery at 0.75s: pings at 0.85 and 0.95 only.
        assert_eq!(n1.pings_sent, 2);
        assert_eq!(n1.incarnation, 1);
        // Node 0 keeps running the whole second.
        assert_eq!(world.actor(NodeId(0)).unwrap().pings_sent, 10);
        // Messages sent to node 1 while it was down were dropped.
        assert!(obs.dropped > 0);
    }

    #[test]
    fn crash_of_crashed_node_and_recovery_of_up_node_are_noops() {
        let mut world = make_world(2);
        let mut obs = CountingObserver::new();
        world.schedule_crash(NodeId(0), SimInstant::from_secs_f64(0.2));
        world.schedule_crash(NodeId(0), SimInstant::from_secs_f64(0.3));
        world.schedule_recovery(NodeId(1), SimInstant::from_secs_f64(0.2));
        world.run_for(SimDuration::from_millis(500), &mut obs);
        assert_eq!(obs.crashes, 1);
        assert_eq!(obs.recoveries, 0);
        assert!(!world.is_up(NodeId(0)));
        assert!(world.actor(NodeId(0)).is_none());
    }

    #[test]
    fn timers_do_not_survive_crash() {
        let mut world = make_world(1);
        let mut obs = CountingObserver::new();
        // Crash just before the first tick at 100ms; timer must not fire.
        world.schedule_crash(NodeId(0), SimInstant::from_secs_f64(0.05));
        world.run_for(SimDuration::from_secs(1), &mut obs);
        assert_eq!(obs.timers, 0);
        assert_eq!(obs.sent, 0);
    }

    #[test]
    fn fixed_delay_medium_delays_delivery() {
        let n = 2u32;
        let mut world: World<PingActor, FixedDelayMedium> = World::new(
            2,
            Box::new(move |id, inc| PingActor {
                id,
                n,
                pings_sent: 0,
                pongs_received: 0,
                incarnation: inc,
            }),
            FixedDelayMedium::new(SimDuration::from_millis(40)),
            7,
        );
        let mut obs = CountingObserver::new();
        // Ping sent at 100ms arrives at 140ms, pong back at 180ms.
        world.run_until(SimInstant::from_secs_f64(0.139), &mut obs);
        assert_eq!(obs.delivered, 0);
        world.run_until(SimInstant::from_secs_f64(0.141), &mut obs);
        assert_eq!(obs.delivered, 2); // both directions' pings delivered at 140ms
    }

    #[test]
    fn with_actor_runs_through_effect_pipeline() {
        let mut world = make_world(2);
        let mut obs = CountingObserver::new();
        world.run_for(SimDuration::from_millis(10), &mut obs);
        world.with_actor(NodeId(0), &mut obs, |_actor, ctx| {
            ctx.send(NodeId(1), TestMsg::Ping(99));
        });
        assert_eq!(obs.sent, 1);
        world.run_for(SimDuration::from_millis(1), &mut obs);
        // The ping is delivered and node 1 immediately replies with a pong,
        // which is also delivered (zero-delay medium).
        assert_eq!(obs.sent, 2);
        assert_eq!(obs.delivered, 2);
    }

    #[test]
    fn determinism_same_seed_same_counts() {
        let run = |seed: u64| {
            let n = 4u32;
            let mut world: World<PingActor, PerfectMedium> = World::new(
                4,
                Box::new(move |id, inc| PingActor {
                    id,
                    n,
                    pings_sent: 0,
                    pongs_received: 0,
                    incarnation: inc,
                }),
                PerfectMedium,
                seed,
            );
            let mut obs = CountingObserver::new();
            world.schedule_crash(NodeId(2), SimInstant::from_secs_f64(1.5));
            world.schedule_recovery(NodeId(2), SimInstant::from_secs_f64(2.5));
            world.run_for(SimDuration::from_secs(5), &mut obs);
            (obs, world.events_processed())
        };
        let (a, ea) = run(11);
        let (b, eb) = run(11);
        assert_eq!(a, b);
        assert_eq!(ea, eb);
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut world = make_world(0);
        let mut obs = NullObserver;
        world.run_until(SimInstant::from_secs_f64(3.0), &mut obs);
        assert_eq!(world.now(), SimInstant::from_secs_f64(3.0));
        assert_eq!(world.num_nodes(), 0);
    }

    /// A medium that duplicates every message with a 1 ms gap between the
    /// two copies.
    struct DuplicatingMedium;

    impl Medium for DuplicatingMedium {
        fn transmit(
            &mut self,
            _now: SimInstant,
            _from: NodeId,
            _to: NodeId,
            _wire_bytes: usize,
            _rng: &mut SimRng,
        ) -> Verdict {
            Verdict::immediate()
        }

        fn transmit_fate(
            &mut self,
            _now: SimInstant,
            _from: NodeId,
            _to: NodeId,
            _wire_bytes: usize,
            _rng: &mut SimRng,
        ) -> Fate {
            Fate::DeliverTwice {
                first: SimDuration::ZERO,
                second: SimDuration::from_millis(1),
            }
        }
    }

    #[test]
    fn duplicating_medium_delivers_every_message_twice() {
        let n = 1u32;
        let mut world: World<PingActor, DuplicatingMedium> = World::new(
            1,
            Box::new(move |id, inc| PingActor {
                id,
                n,
                pings_sent: 0,
                pongs_received: 0,
                incarnation: inc,
            }),
            DuplicatingMedium,
            5,
        );
        let mut obs = CountingObserver::new();
        // One node pinging itself: each ping is duplicated, and each of the
        // two delivered pings triggers a pong, which is duplicated again.
        world.run_until(SimInstant::from_secs_f64(0.105), &mut obs);
        // 1 ping sent, delivered twice; 2 pongs sent, delivered 4 times.
        assert_eq!(obs.sent, 3);
        assert_eq!(obs.delivered, 6);
        assert_eq!(world.actor(NodeId(0)).unwrap().pongs_received, 4);
    }

    #[test]
    fn send_to_unknown_node_is_dropped() {
        let mut world = make_world(1);
        let mut obs = CountingObserver::new();
        world.with_actor(NodeId(0), &mut obs, |_a, ctx| {
            ctx.send(NodeId(57), TestMsg::Ping(1));
        });
        assert_eq!(obs.sent, 1);
        assert_eq!(obs.dropped, 1);
    }
}
