//! Sharded parallel discrete-event simulation with conservative lookahead.
//!
//! [`ParWorld`] partitions the nodes of a simulation across `W` sim workers
//! (round-robin by node id, the same dense interning idea as
//! [`dense`](crate::dense): global node `g` lives in shard `g % W` at local
//! slot `g / W`). Each shard owns its slice of node state, its own
//! [`EventWheel`], and one RNG stream per node. Workers advance through
//! *barrier-delimited epochs* whose width is the medium's
//! [`min_delay`](crate::medium::Medium::min_delay) — the *lookahead* `L` of
//! a conservative parallel simulation. Within the half-open window
//! `[T, T + L)` no shard can receive a message sent inside the same window
//! (every delivery takes at least `L`), so shards process their local
//! events independently and exchange the buffered cross-shard sends at the
//! epoch barrier. No null messages are needed: the barrier itself bounds
//! the skew.
//!
//! # Determinism
//!
//! Unlike the sequential [`World`](crate::world::World), which orders
//! simultaneous events by a global push counter and draws all randomness
//! from one execution-ordered stream, `ParWorld` uses *partition-independent*
//! coordinates so that every worker count replays the same execution:
//!
//! * every event carries a canonical key `(origin_node << 32) | per_node_seq`
//!   — ties at equal virtual time resolve by origin node, then by the
//!   origin's own event counter, an order no shard boundary can perturb;
//! * message fates are drawn from the *sender's* per-node RNG stream
//!   (seeded from `(world_seed, node_id)`), so a link's loss/delay sequence
//!   depends only on the sender's canonical event order.
//!
//! A given `(seed, workload)` therefore produces identical observers,
//! event counts and final actor states for **any** `workers` value,
//! including `workers = 1`.
//!
//! # Zero lookahead
//!
//! When the medium cannot promise a positive minimum delay
//! (`min_delay() == 0`, e.g. [`PerfectMedium`](crate::medium::PerfectMedium)),
//! the epoch width collapses and `ParWorld` falls back to a sequential
//! merged loop that pops the globally minimal `(time, key)` event across
//! all shards — the exact canonical order the epochs would have produced,
//! just without parallel speedup.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::actor::{Actor, Context, Effect, NodeId, TimerTag, WireSize};
use crate::medium::{Fate, Medium};
use crate::observer::Observer;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimInstant};
use crate::wheel::EventWheel;
use crate::world::{EventKind, NodeSlot};

/// Builds (or rebuilds, after a recovery) the actor for a node.
///
/// The parallel driver's counterpart of
/// [`ActorFactory`](crate::world::ActorFactory): recoveries execute on sim
/// worker threads, so the factory must be callable from any of them.
pub type SharedActorFactory<A> = Box<dyn Fn(NodeId, u64) -> A + Send + Sync>;

/// An event en route to another shard: `(arrival, canonical key, payload)`.
type OutEvent<M> = (SimInstant, u64, EventKind<M>);

/// splitmix64-style finalizer mixing the world seed with a node id, so each
/// node gets an independent, partition-independent RNG stream.
fn mix_seed(seed: u64, node: u64) -> u64 {
    let mut z = seed ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The canonical, partition-independent tie-break key of an event.
fn canonical_key(origin: NodeId, seq: u32) -> u64 {
    (u64::from(origin.0) << 32) | u64::from(seq)
}

/// One shard: a worker's slice of nodes, wheel, and per-node RNG streams.
struct Shard<A: Actor, M> {
    /// This shard's index; owns every node with `id % stride == index`.
    index: usize,
    /// Number of shards (the round-robin stride).
    stride: usize,
    /// Total node count of the world (for out-of-range send detection).
    total_nodes: usize,
    nodes: Vec<NodeSlot<A>>,
    /// Per-node deterministic RNG streams, indexed like `nodes`.
    rngs: Vec<SimRng>,
    /// Per-node canonical event sequence counters, indexed like `nodes`.
    seqs: Vec<u32>,
    wheel: EventWheel<EventKind<A::Msg>>,
    medium: M,
    now: SimInstant,
    events_processed: u64,
    intra_sends: u64,
    cross_sends: u64,
}

impl<A: Actor, M: Medium> Shard<A, M> {
    #[inline]
    fn local(&self, node: NodeId) -> usize {
        debug_assert_eq!(node.index() % self.stride, self.index);
        node.index() / self.stride
    }

    /// Allocates the next canonical key of `origin`.
    fn alloc_key(&mut self, origin: NodeId) -> u64 {
        let l = self.local(origin);
        let s = self.seqs[l];
        self.seqs[l] = s.wrapping_add(1);
        canonical_key(origin, s)
    }

    /// Executes one event at `at`, routing cross-shard sends into `out`.
    fn exec<O: Observer<A::Event>>(
        &mut self,
        at: SimInstant,
        kind: EventKind<A::Msg>,
        factory: &(dyn Fn(NodeId, u64) -> A + Send + Sync),
        observer: &mut O,
        out: &mut [Vec<OutEvent<A::Msg>>],
    ) {
        debug_assert!(at >= self.now, "time must not go backwards");
        self.now = at;
        self.events_processed += 1;
        match kind {
            EventKind::Start { node } => self.handle_start(node, observer, out),
            EventKind::Deliver {
                from,
                to,
                msg,
                bytes,
            } => self.handle_deliver(from, to, msg, bytes, observer, out),
            EventKind::Timer {
                node,
                tag,
                node_epoch,
                generation,
            } => self.handle_timer(node, tag, node_epoch, generation, observer, out),
            EventKind::Crash { node } => self.handle_crash(node, observer),
            EventKind::Recover { node } => self.handle_recover(node, factory, observer, out),
        }
    }

    fn handle_start<O: Observer<A::Event>>(
        &mut self,
        node: NodeId,
        observer: &mut O,
        out: &mut [Vec<OutEvent<A::Msg>>],
    ) {
        let l = self.local(node);
        let slot = &mut self.nodes[l];
        if !slot.up {
            return;
        }
        let mut ctx = Context::new(self.now, node, slot.incarnation);
        if let Some(actor) = slot.actor.as_mut() {
            actor.on_start(&mut ctx);
        }
        let effects = ctx.into_effects();
        self.apply_effects(node, effects, observer, out);
    }

    fn handle_deliver<O: Observer<A::Event>>(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: A::Msg,
        bytes: usize,
        observer: &mut O,
        out: &mut [Vec<OutEvent<A::Msg>>],
    ) {
        let l = self.local(to);
        let slot = &mut self.nodes[l];
        if !slot.up {
            observer.message_dropped(self.now, from, to, bytes);
            return;
        }
        observer.message_delivered(self.now, from, to, bytes);
        let mut ctx = Context::new(self.now, to, slot.incarnation);
        if let Some(actor) = slot.actor.as_mut() {
            actor.on_message(from, msg, &mut ctx);
        }
        let effects = ctx.into_effects();
        self.apply_effects(to, effects, observer, out);
    }

    fn handle_timer<O: Observer<A::Event>>(
        &mut self,
        node: NodeId,
        tag: TimerTag,
        node_epoch: u64,
        generation: u64,
        observer: &mut O,
        out: &mut [Vec<OutEvent<A::Msg>>],
    ) {
        let l = self.local(node);
        let slot = &mut self.nodes[l];
        if !slot.up || slot.epoch != node_epoch {
            return;
        }
        match slot.timers.get(tag.0) {
            Some(g) if g == generation => {}
            _ => return, // re-armed or cancelled since this event was queued
        }
        slot.timers.remove(tag.0);
        observer.timer_fired(self.now, node);
        let mut ctx = Context::new(self.now, node, slot.incarnation);
        if let Some(actor) = slot.actor.as_mut() {
            actor.on_timer(tag, &mut ctx);
        }
        let effects = ctx.into_effects();
        self.apply_effects(node, effects, observer, out);
    }

    fn handle_crash<O: Observer<A::Event>>(&mut self, node: NodeId, observer: &mut O) {
        let l = self.local(node);
        let slot = &mut self.nodes[l];
        if !slot.up {
            return;
        }
        slot.up = false;
        slot.actor = None;
        slot.epoch += 1;
        slot.timers.clear();
        observer.node_crashed(self.now, node);
    }

    fn handle_recover<O: Observer<A::Event>>(
        &mut self,
        node: NodeId,
        factory: &(dyn Fn(NodeId, u64) -> A + Send + Sync),
        observer: &mut O,
        out: &mut [Vec<OutEvent<A::Msg>>],
    ) {
        let l = self.local(node);
        {
            let slot = &mut self.nodes[l];
            if slot.up {
                return;
            }
            slot.up = true;
            slot.incarnation += 1;
        }
        let incarnation = self.nodes[l].incarnation;
        self.nodes[l].actor = Some(factory(node, incarnation));
        observer.node_recovered(self.now, node, incarnation);
        self.handle_start(node, observer, out);
    }

    fn apply_effects<O: Observer<A::Event>>(
        &mut self,
        node: NodeId,
        effects: Vec<Effect<A::Msg, A::Event>>,
        observer: &mut O,
        out: &mut [Vec<OutEvent<A::Msg>>],
    ) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    let bytes = msg.wire_size();
                    observer.message_sent(self.now, node, to, bytes);
                    if to.index() >= self.total_nodes {
                        // Destination unknown to this world: treated as lost.
                        observer.message_dropped(self.now, node, to, bytes);
                        continue;
                    }
                    let l = self.local(node);
                    match self
                        .medium
                        .transmit_fate(self.now, node, to, bytes, &mut self.rngs[l])
                    {
                        Fate::Dropped => observer.message_dropped(self.now, node, to, bytes),
                        Fate::Deliver { delay } => {
                            self.route(node, to, msg, bytes, self.now + delay, out);
                        }
                        Fate::DeliverTwice { first, second } => {
                            self.route(node, to, msg.clone(), bytes, self.now + first, out);
                            self.route(node, to, msg, bytes, self.now + second, out);
                        }
                    }
                }
                Effect::SetTimer { tag, at } => {
                    let l = self.local(node);
                    let slot = &mut self.nodes[l];
                    slot.timer_generation += 1;
                    let generation = slot.timer_generation;
                    slot.timers.insert(tag.0, generation);
                    let node_epoch = slot.epoch;
                    let fire_at = at.max(self.now);
                    let key = self.alloc_key(node);
                    self.wheel.push(
                        fire_at,
                        key,
                        EventKind::Timer {
                            node,
                            tag,
                            node_epoch,
                            generation,
                        },
                    );
                }
                Effect::CancelTimer { tag } => {
                    let l = self.local(node);
                    self.nodes[l].timers.remove(tag.0);
                }
                Effect::Emit(event) => {
                    observer.event_emitted(self.now, node, &event);
                }
            }
        }
    }

    /// Routes one delivery: into the local wheel if the destination lives on
    /// this shard, into the cross-shard outbox otherwise.
    fn route(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: A::Msg,
        bytes: usize,
        at: SimInstant,
        out: &mut [Vec<OutEvent<A::Msg>>],
    ) {
        let key = self.alloc_key(from);
        let kind = EventKind::Deliver {
            from,
            to,
            msg,
            bytes,
        };
        let dest = to.index() % self.stride;
        if dest == self.index {
            self.intra_sends += 1;
            self.wheel.push(at, key, kind);
        } else {
            self.cross_sends += 1;
            out[dest].push((at, key, kind));
        }
    }
}

/// The sharded parallel counterpart of [`World`](crate::world::World).
///
/// See the [module documentation](self) for the execution model. The public
/// API mirrors `World`, with two deliberate differences:
///
/// * the factory is a [`SharedActorFactory`] (recoveries run on worker
///   threads),
/// * [`ParWorld::run_until`] takes one observer **per worker**; the caller
///   merges them afterwards (counters sum, traces merge-sort by time).
pub struct ParWorld<A: Actor, M: Medium> {
    now: SimInstant,
    workers: usize,
    num_nodes: usize,
    shards: Vec<Shard<A, M>>,
    factory: SharedActorFactory<A>,
}

impl<A: Actor, M: Medium> ParWorld<A, M> {
    /// Creates a world with `num_nodes` nodes sharded across `workers` sim
    /// workers (clamped to the node count), all initially up.
    ///
    /// Each shard receives an independent clone of `medium`; the factory is
    /// invoked in global node-id order, exactly like the sequential world.
    pub fn new(
        num_nodes: usize,
        workers: usize,
        factory: SharedActorFactory<A>,
        medium: M,
        seed: u64,
    ) -> Self
    where
        M: Clone,
    {
        assert!(workers >= 1, "at least one sim worker is required");
        let workers = workers.min(num_nodes.max(1));
        let mut shards: Vec<Shard<A, M>> = (0..workers)
            .map(|index| Shard {
                index,
                stride: workers,
                total_nodes: num_nodes,
                nodes: Vec::with_capacity(num_nodes.div_ceil(workers)),
                rngs: Vec::with_capacity(num_nodes.div_ceil(workers)),
                seqs: Vec::with_capacity(num_nodes.div_ceil(workers)),
                wheel: EventWheel::new(),
                medium: medium.clone(),
                now: SimInstant::ZERO,
                events_processed: 0,
                intra_sends: 0,
                cross_sends: 0,
            })
            .collect();
        for g in 0..num_nodes {
            let node = NodeId(g as u32);
            let shard = &mut shards[g % workers];
            shard.nodes.push(NodeSlot::new(factory(node, 0)));
            shard.rngs.push(SimRng::seed_from(mix_seed(seed, g as u64)));
            shard.seqs.push(0);
        }
        for g in 0..num_nodes {
            let node = NodeId(g as u32);
            let shard = &mut shards[g % workers];
            let key = shard.alloc_key(node);
            shard
                .wheel
                .push(SimInstant::ZERO, key, EventKind::Start { node });
        }
        ParWorld {
            now: SimInstant::ZERO,
            workers,
            num_nodes,
            shards,
            factory,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Number of nodes in the world.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of sim workers (shards) driving this world.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total number of events processed so far, across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// `(intra_shard, cross_shard)` delivery routing counts so far: how much
    /// traffic stayed shard-local versus crossed an epoch boundary.
    pub fn routing_stats(&self) -> (u64, u64) {
        self.shards
            .iter()
            .fold((0, 0), |(i, c), s| (i + s.intra_sends, c + s.cross_sends))
    }

    /// The lookahead currently in force: the minimum over all shard media of
    /// [`Medium::min_delay`]. Zero means the next run falls back to
    /// sequential canonical-order execution.
    pub fn lookahead(&self) -> SimDuration {
        self.shards
            .iter()
            .map(|s| s.medium.min_delay())
            .fold(SimDuration::MAX, SimDuration::min)
    }

    #[inline]
    fn shard_of(&self, node: NodeId) -> usize {
        node.index() % self.workers
    }

    /// Returns whether `node` is currently up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_up(&self, node: NodeId) -> bool {
        let s = self.shard_of(node);
        self.shards[s].nodes[node.index() / self.workers].up
    }

    /// Returns the current incarnation of `node`.
    pub fn incarnation(&self, node: NodeId) -> u64 {
        let s = self.shard_of(node);
        self.shards[s].nodes[node.index() / self.workers].incarnation
    }

    /// Immutable access to the actor of `node`, if the node is up.
    pub fn actor(&self, node: NodeId) -> Option<&A> {
        let s = self.shard_of(node);
        let slot = &self.shards[s].nodes[node.index() / self.workers];
        if slot.up {
            slot.actor.as_ref()
        } else {
            None
        }
    }

    /// Mutable access to the actor of `node`, if the node is up.
    pub fn actor_mut(&mut self, node: NodeId) -> Option<&mut A> {
        let s = self.shard_of(node);
        let local = node.index() / self.workers;
        let slot = &mut self.shards[s].nodes[local];
        if slot.up {
            slot.actor.as_mut()
        } else {
            None
        }
    }

    /// Applies `f` to every shard's medium clone, in shard order.
    ///
    /// Mid-run topology mutations (partitions, link overlays) must reach
    /// every clone to stay consistent; this is the parallel counterpart of
    /// [`World::medium_mut`](crate::world::World::medium_mut).
    pub fn for_each_medium(&mut self, mut f: impl FnMut(&mut M)) {
        for shard in &mut self.shards {
            f(&mut shard.medium);
        }
    }

    /// Iterates the per-shard medium clones, in shard order (e.g. to sum
    /// per-shard traffic statistics).
    pub fn media(&self) -> impl Iterator<Item = &M> + '_ {
        self.shards.iter().map(|s| &s.medium)
    }

    /// Schedules a crash of `node` at absolute time `at`.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimInstant) {
        let s = self.shard_of(node);
        let shard = &mut self.shards[s];
        let key = shard.alloc_key(node);
        shard.wheel.push(at, key, EventKind::Crash { node });
    }

    /// Schedules a recovery of `node` at absolute time `at`.
    pub fn schedule_recovery(&mut self, node: NodeId, at: SimInstant) {
        let s = self.shard_of(node);
        let shard = &mut self.shards[s];
        let key = shard.alloc_key(node);
        shard.wheel.push(at, key, EventKind::Recover { node });
    }

    /// Applies a closure to a live actor through the same effect-processing
    /// path as message and timer callbacks (harness API commands).
    pub fn with_actor<O, F>(&mut self, node: NodeId, observer: &mut O, f: F)
    where
        O: Observer<A::Event>,
        F: FnOnce(&mut A, &mut Context<A::Msg, A::Event>),
    {
        let s = self.shard_of(node);
        let now = self.now;
        let mut out: Vec<Vec<OutEvent<A::Msg>>> = (0..self.workers).map(|_| Vec::new()).collect();
        {
            let shard = &mut self.shards[s];
            shard.now = shard.now.max(now);
            let l = shard.local(node);
            let slot = &mut shard.nodes[l];
            if !slot.up {
                return;
            }
            let mut ctx = Context::new(shard.now, node, slot.incarnation);
            if let Some(actor) = slot.actor.as_mut() {
                f(actor, &mut ctx);
            }
            let effects = ctx.into_effects();
            shard.apply_effects(node, effects, observer, &mut out);
        }
        self.flush_out(&mut out);
    }

    /// Pushes buffered cross-shard events straight into their destination
    /// wheels (main-thread contexts: sequential fallback, `with_actor`).
    fn flush_out(&mut self, out: &mut [Vec<OutEvent<A::Msg>>]) {
        for (dest, buf) in out.iter_mut().enumerate() {
            for (at, key, kind) in buf.drain(..) {
                self.shards[dest].wheel.push(at, key, kind);
            }
        }
    }

    /// Runs the simulation until virtual time `deadline`, reporting shard
    /// `w`'s activity to `observers[w]`. Events scheduled exactly at
    /// `deadline` are processed, as in the sequential world.
    ///
    /// # Panics
    ///
    /// Panics unless `observers.len() == self.workers()`.
    pub fn run_until<O>(&mut self, deadline: SimInstant, observers: &mut [O])
    where
        O: Observer<A::Event> + Send,
        A: Send,
        A::Msg: Send,
        M: Send,
    {
        assert_eq!(
            observers.len(),
            self.workers,
            "one observer per sim worker is required"
        );
        let lookahead = self.lookahead();
        if self.workers == 1 || lookahead.is_zero() {
            self.run_until_sequential(deadline, observers);
        } else {
            self.run_until_epochs(deadline, lookahead, observers);
        }
        self.now = self.now.max(deadline);
        for shard in &mut self.shards {
            shard.now = self.now;
        }
    }

    /// Runs the simulation for `span` of virtual time from the current clock.
    pub fn run_for<O>(&mut self, span: SimDuration, observers: &mut [O])
    where
        O: Observer<A::Event> + Send,
        A: Send,
        A::Msg: Send,
        M: Send,
    {
        let deadline = self.now + span;
        self.run_until(deadline, observers);
    }

    /// The zero-lookahead (or single-worker) driver: one thread pops the
    /// globally minimal `(time, key)` event across all shards — the same
    /// canonical total order the epoch driver realizes in parallel.
    fn run_until_sequential<O: Observer<A::Event>>(
        &mut self,
        deadline: SimInstant,
        observers: &mut [O],
    ) {
        let mut out: Vec<Vec<OutEvent<A::Msg>>> = (0..self.workers).map(|_| Vec::new()).collect();
        loop {
            let mut best: Option<(SimInstant, u64, usize)> = None;
            for (s, shard) in self.shards.iter_mut().enumerate() {
                if let Some((at, key, _)) = shard.wheel.peek() {
                    if best.is_none_or(|(bat, bkey, _)| (at, key) < (bat, bkey)) {
                        best = Some((at, key, s));
                    }
                }
            }
            let Some((at, _, s)) = best else { break };
            if at > deadline {
                break;
            }
            let shard = &mut self.shards[s];
            let (at, _, kind) = shard.wheel.pop().expect("peeked event must pop");
            shard.exec(at, kind, &*self.factory, &mut observers[s], &mut out);
            self.flush_out(&mut out);
        }
    }

    /// The parallel driver: conservative barrier-delimited epochs of width
    /// `lookahead` (see the [module documentation](self)).
    fn run_until_epochs<O>(
        &mut self,
        deadline: SimInstant,
        lookahead: SimDuration,
        observers: &mut [O],
    ) where
        O: Observer<A::Event> + Send,
        A: Send,
        A::Msg: Send,
        M: Send,
    {
        let workers = self.workers;
        let lookahead_ns = lookahead.as_nanos();
        let deadline_ns = deadline.as_nanos();
        let barrier = Barrier::new(workers);
        let global_next = AtomicU64::new(u64::MAX);
        let epoch_upper = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let inboxes: Vec<Mutex<Vec<OutEvent<A::Msg>>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        let factory: &(dyn Fn(NodeId, u64) -> A + Send + Sync) = &*self.factory;

        std::thread::scope(|scope| {
            let mut pairs: Vec<(&mut Shard<A, M>, &mut O)> =
                self.shards.iter_mut().zip(observers.iter_mut()).collect();
            // Worker 0 (the coordinator) runs on the calling thread.
            let (shard0, observer0) = pairs.remove(0);
            for (shard, observer) in pairs {
                let barrier = &barrier;
                let global_next = &global_next;
                let epoch_upper = &epoch_upper;
                let done = &done;
                let inboxes = &inboxes[..];
                scope.spawn(move || {
                    epoch_worker(
                        shard,
                        observer,
                        factory,
                        barrier,
                        global_next,
                        epoch_upper,
                        done,
                        inboxes,
                        lookahead_ns,
                        deadline_ns,
                        false,
                    );
                });
            }
            epoch_worker(
                shard0,
                observer0,
                factory,
                &barrier,
                &global_next,
                &epoch_upper,
                &done,
                &inboxes,
                lookahead_ns,
                deadline_ns,
                true,
            );
        });
    }
}

/// One worker's epoch loop.
///
/// Three barriers per epoch: (A) drain the inbox and publish the local
/// next-event time, (B) the coordinator picks the epoch window
/// `[T, min(T + L, deadline + 1))` (or signals completion), (C) process
/// local events inside the window and flush buffered cross-shard sends to
/// the destination inboxes. The lookahead guarantees every cross-shard send
/// from inside the window arrives at or after its upper bound, so next
/// epoch's inbox drain can never deliver into the past.
#[allow(clippy::too_many_arguments)]
fn epoch_worker<A, M, O>(
    shard: &mut Shard<A, M>,
    observer: &mut O,
    factory: &(dyn Fn(NodeId, u64) -> A + Send + Sync),
    barrier: &Barrier,
    global_next: &AtomicU64,
    epoch_upper: &AtomicU64,
    done: &AtomicBool,
    inboxes: &[Mutex<Vec<OutEvent<A::Msg>>>],
    lookahead_ns: u64,
    deadline_ns: u64,
    coordinator: bool,
) where
    A: Actor,
    M: Medium,
    O: Observer<A::Event>,
{
    let mut out: Vec<Vec<OutEvent<A::Msg>>> = (0..inboxes.len()).map(|_| Vec::new()).collect();
    loop {
        // Phase A: merge cross-shard arrivals, publish the local horizon.
        {
            let mut inbox = inboxes[shard.index].lock().expect("inbox poisoned");
            for (at, key, kind) in inbox.drain(..) {
                shard.wheel.push(at, key, kind);
            }
        }
        let local_next = shard.wheel.peek_time().map_or(u64::MAX, |t| t.as_nanos());
        global_next.fetch_min(local_next, Ordering::SeqCst);
        barrier.wait();

        // Phase B: the coordinator fixes this epoch's window.
        if coordinator {
            let t = global_next.swap(u64::MAX, Ordering::SeqCst);
            if t == u64::MAX || t > deadline_ns {
                done.store(true, Ordering::SeqCst);
            } else {
                let upper = t
                    .saturating_add(lookahead_ns)
                    .min(deadline_ns.saturating_add(1));
                epoch_upper.store(upper, Ordering::SeqCst);
            }
        }
        barrier.wait();
        if done.load(Ordering::SeqCst) {
            break;
        }
        let upper = epoch_upper.load(Ordering::SeqCst);

        // Phase C: process everything strictly inside the window; newly
        // produced intra-shard events join in, cross-shard sends buffer.
        while let Some(t) = shard.wheel.peek_time() {
            if t.as_nanos() >= upper {
                break;
            }
            let (at, _, kind) = shard.wheel.pop().expect("peeked event must pop");
            shard.exec(at, kind, factory, observer, &mut out);
        }
        for (dest, buf) in out.iter_mut().enumerate() {
            if !buf.is_empty() {
                inboxes[dest].lock().expect("inbox poisoned").append(buf);
            }
        }
        barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::{FixedDelayMedium, PerfectMedium};
    use crate::observer::CountingObserver;
    use crate::world::World;

    /// The world.rs test actor: pings its successor every 100 ms.
    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping(u64),
        Pong(u64),
    }

    impl WireSize for TestMsg {
        fn wire_size(&self) -> usize {
            9
        }
    }

    struct PingActor {
        id: NodeId,
        n: u32,
        pings_sent: u64,
        pongs_received: u64,
    }

    const TICK: TimerTag = TimerTag(1);

    impl Actor for PingActor {
        type Msg = TestMsg;
        type Event = String;

        fn on_start(&mut self, ctx: &mut Context<TestMsg, String>) {
            ctx.set_timer_after(TICK, SimDuration::from_millis(100));
        }

        fn on_message(&mut self, from: NodeId, msg: TestMsg, ctx: &mut Context<TestMsg, String>) {
            match msg {
                TestMsg::Ping(n) => ctx.send(from, TestMsg::Pong(n)),
                TestMsg::Pong(_) => self.pongs_received += 1,
            }
        }

        fn on_timer(&mut self, _tag: TimerTag, ctx: &mut Context<TestMsg, String>) {
            let next = NodeId((self.id.0 + 1) % self.n);
            self.pings_sent += 1;
            ctx.send(next, TestMsg::Ping(self.pings_sent));
            ctx.set_timer_after(TICK, SimDuration::from_millis(100));
        }
    }

    fn ping_factory(n: u32) -> SharedActorFactory<PingActor> {
        Box::new(move |id, _inc| PingActor {
            id,
            n,
            pings_sent: 0,
            pongs_received: 0,
        })
    }

    /// One run's comparable fingerprint: totals plus per-node actor state.
    fn fingerprint<M: Medium + Send + Clone>(
        n: u32,
        workers: usize,
        medium: M,
        with_churn: bool,
    ) -> (CountingObserver, u64, Vec<(u64, u64, u64)>) {
        let mut world = ParWorld::new(n as usize, workers, ping_factory(n), medium, 42);
        let mut obs = vec![CountingObserver::new(); world.workers()];
        if with_churn {
            world.schedule_crash(NodeId(1), SimInstant::from_secs_f64(0.45));
            world.schedule_recovery(NodeId(1), SimInstant::from_secs_f64(0.75));
        }
        world.run_for(SimDuration::from_secs(2), &mut obs);
        let mut total = CountingObserver::new();
        for o in &obs {
            total.sent += o.sent;
            total.dropped += o.dropped;
            total.delivered += o.delivered;
            total.timers += o.timers;
            total.crashes += o.crashes;
            total.recoveries += o.recoveries;
            total.events += o.events;
            total.bytes_sent += o.bytes_sent;
            total.bytes_delivered += o.bytes_delivered;
        }
        let actors = (0..n)
            .map(|i| {
                let node = NodeId(i);
                match world.actor(node) {
                    Some(a) => (a.pings_sent, a.pongs_received, world.incarnation(node)),
                    None => (u64::MAX, u64::MAX, world.incarnation(node)),
                }
            })
            .collect();
        (total, world.events_processed(), actors)
    }

    #[test]
    fn worker_counts_replay_identically_with_lookahead() {
        let delay = FixedDelayMedium::new(SimDuration::from_millis(5));
        let base = fingerprint(6, 1, delay, true);
        for workers in [2, 3, 6] {
            assert_eq!(
                fingerprint(6, workers, delay, true),
                base,
                "workers={workers} diverged from workers=1"
            );
        }
    }

    #[test]
    fn zero_lookahead_falls_back_and_still_replays_identically() {
        let base = fingerprint(5, 1, PerfectMedium, false);
        for workers in [2, 4] {
            let run = fingerprint(5, workers, PerfectMedium, false);
            assert_eq!(run, base, "workers={workers} diverged from workers=1");
        }
    }

    #[test]
    fn parallel_totals_match_the_sequential_world() {
        // The RNG-free, fixed-delay workload has one causal outcome; the
        // canonical order must agree with the legacy global-seq order on
        // every aggregate even though tie-breaking differs.
        let n = 4u32;
        let mut seq_world: World<PingActor, FixedDelayMedium> = World::new(
            n as usize,
            Box::new(move |id, _| PingActor {
                id,
                n,
                pings_sent: 0,
                pongs_received: 0,
            }),
            FixedDelayMedium::new(SimDuration::from_millis(5)),
            42,
        );
        let mut seq_obs = CountingObserver::new();
        seq_world.run_for(SimDuration::from_secs(2), &mut seq_obs);

        let (par_obs, par_events, _) = fingerprint(
            n,
            4,
            FixedDelayMedium::new(SimDuration::from_millis(5)),
            false,
        );
        assert_eq!(par_obs, seq_obs);
        assert_eq!(par_events, seq_world.events_processed());
    }

    #[test]
    fn crash_and_recovery_cross_worker_parity() {
        let delay = FixedDelayMedium::new(SimDuration::from_millis(3));
        let a = fingerprint(8, 2, delay, true);
        let b = fingerprint(8, 8, delay, true);
        assert_eq!(a, b);
        // The churn actually happened.
        assert_eq!(a.0.crashes, 1);
        assert_eq!(a.0.recoveries, 1);
    }

    #[test]
    fn with_actor_routes_cross_shard_sends() {
        let mut world = ParWorld::new(
            4,
            2,
            ping_factory(4),
            FixedDelayMedium::new(SimDuration::from_millis(1)),
            7,
        );
        let mut obs = vec![CountingObserver::new(); world.workers()];
        world.run_for(SimDuration::from_millis(10), &mut obs);
        // Node 0 (shard 0) pings node 1 (shard 1): a cross-shard send.
        let mut extra = CountingObserver::new();
        world.with_actor(NodeId(0), &mut extra, |_a, ctx| {
            ctx.send(NodeId(1), TestMsg::Ping(99));
        });
        assert_eq!(extra.sent, 1);
        world.run_for(SimDuration::from_millis(5), &mut obs);
        let delivered: u64 = obs.iter().map(|o| o.delivered).sum();
        assert!(delivered >= 1);
        let (_intra, cross) = world.routing_stats();
        assert!(cross >= 1, "ring traffic must cross the 2-shard cut");
    }

    #[test]
    fn workers_clamp_to_node_count_and_observe_lookahead() {
        let world: ParWorld<PingActor, FixedDelayMedium> = ParWorld::new(
            2,
            16,
            ping_factory(2),
            FixedDelayMedium::new(SimDuration::from_millis(2)),
            1,
        );
        assert_eq!(world.workers(), 2);
        assert_eq!(world.lookahead(), SimDuration::from_millis(2));
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut world: ParWorld<PingActor, PerfectMedium> =
            ParWorld::new(0, 4, ping_factory(1), PerfectMedium, 1);
        let mut obs = vec![CountingObserver::new(); world.workers()];
        world.run_until(SimInstant::from_secs_f64(3.0), &mut obs);
        assert_eq!(world.now(), SimInstant::from_secs_f64(3.0));
        assert_eq!(world.num_nodes(), 0);
    }
}
