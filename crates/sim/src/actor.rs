//! The sans-io actor model shared by the simulator and the real-time runtime.
//!
//! A protocol node (in this repository, the leader-election service's
//! `ServiceNode`) implements [`Actor`]: it receives `on_start`, `on_message`
//! and `on_timer` callbacks and records the effects it wants to perform —
//! messages to send, timers to arm, application events to raise — into the
//! [`Context`]. Whoever drives the actor (the discrete-event
//! [`World`](crate::world::World) or a threaded runtime) interprets those
//! effects. Protocol code therefore contains no I/O and no clock reads,
//! which is what makes it possible to run the exact same code for days of
//! virtual time in seconds of wall-clock time.

use std::fmt;

use crate::time::{SimDuration, SimInstant};

/// Identifier of a node (a "workstation" in the paper's terminology).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as an index usable for vectors of nodes.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An actor-chosen tag identifying one of its timers.
///
/// Setting a timer with a tag that is already armed re-arms it (the previous
/// deadline is cancelled), which gives actors exactly-once semantics per tag.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimerTag(pub u64);

impl fmt::Debug for TimerTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// Messages that can be transported by a runtime must report the number of
/// bytes they would occupy on the wire, so traffic statistics (Figure 6 of
/// the paper) can be computed without a real network.
pub trait WireSize {
    /// Number of payload bytes this message would occupy when encoded.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

/// An effect requested by an actor while handling a callback.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect<M, E> {
    /// Send `msg` to node `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to deliver.
        msg: M,
    },
    /// Arm (or re-arm) the timer identified by `tag` to fire at `at`.
    SetTimer {
        /// The actor-chosen timer identifier.
        tag: TimerTag,
        /// Absolute virtual time at which the timer should fire.
        at: SimInstant,
    },
    /// Cancel the timer identified by `tag` if it is armed.
    CancelTimer {
        /// The actor-chosen timer identifier.
        tag: TimerTag,
    },
    /// Raise an application-level event (e.g. "leader of group g changed").
    Emit(E),
}

/// The callback context handed to actors.
///
/// It exposes the current virtual time, the actor's own identity and
/// incarnation, and collects the actor's effects.
#[derive(Debug)]
pub struct Context<M, E> {
    now: SimInstant,
    node: NodeId,
    incarnation: u64,
    effects: Vec<Effect<M, E>>,
}

impl<M, E> Context<M, E> {
    /// Creates a detached context. Runtimes use this; actors only consume
    /// contexts they are given.
    pub fn new(now: SimInstant, node: NodeId, incarnation: u64) -> Self {
        Context {
            now,
            node,
            incarnation,
            effects: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// The identity of the actor being called.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The incarnation number of the actor (incremented by the runtime every
    /// time the node recovers from a crash).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Requests that `msg` be sent to `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arms (or re-arms) timer `tag` to fire at absolute time `at`.
    pub fn set_timer_at(&mut self, tag: TimerTag, at: SimInstant) {
        self.effects.push(Effect::SetTimer { tag, at });
    }

    /// Arms (or re-arms) timer `tag` to fire `after` from now.
    pub fn set_timer_after(&mut self, tag: TimerTag, after: SimDuration) {
        let at = self.now + after;
        self.set_timer_at(tag, at);
    }

    /// Cancels timer `tag`.
    pub fn cancel_timer(&mut self, tag: TimerTag) {
        self.effects.push(Effect::CancelTimer { tag });
    }

    /// Raises an application-level event.
    pub fn emit(&mut self, event: E) {
        self.effects.push(Effect::Emit(event));
    }

    /// Number of effects recorded so far.
    pub fn effect_count(&self) -> usize {
        self.effects.len()
    }

    /// Consumes the context and returns the recorded effects in order.
    pub fn into_effects(self) -> Vec<Effect<M, E>> {
        self.effects
    }

    /// Drains the recorded effects, leaving the context reusable.
    pub fn drain_effects(&mut self) -> Vec<Effect<M, E>> {
        std::mem::take(&mut self.effects)
    }
}

/// A protocol node driven by a runtime.
///
/// Implementations must be deterministic functions of the inputs they are
/// given: all timing comes from the context and all randomness (if any) must
/// be owned by the actor and seeded explicitly.
pub trait Actor {
    /// The message type exchanged between actors of this kind.
    type Msg: Clone + WireSize;
    /// The application-level event type raised by this actor.
    type Event;

    /// Called once when the node starts (and again, on a fresh instance,
    /// after each recovery from a crash).
    fn on_start(&mut self, ctx: &mut Context<Self::Msg, Self::Event>);

    /// Called when a message from `from` is delivered.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Msg,
        ctx: &mut Context<Self::Msg, Self::Event>,
    );

    /// Called when an armed timer fires.
    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<Self::Msg, Self::Event>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u32);
    impl WireSize for Ping {
        fn wire_size(&self) -> usize {
            4
        }
    }

    #[test]
    fn context_records_effects_in_order() {
        let mut ctx: Context<Ping, &'static str> =
            Context::new(SimInstant::ZERO + SimDuration::from_secs(1), NodeId(3), 2);
        assert_eq!(ctx.now(), SimInstant::from_nanos(1_000_000_000));
        assert_eq!(ctx.node(), NodeId(3));
        assert_eq!(ctx.incarnation(), 2);

        ctx.send(NodeId(1), Ping(7));
        ctx.set_timer_after(TimerTag(9), SimDuration::from_millis(500));
        ctx.cancel_timer(TimerTag(4));
        ctx.emit("leader-changed");
        assert_eq!(ctx.effect_count(), 4);

        let effects = ctx.into_effects();
        assert_eq!(
            effects[0],
            Effect::Send {
                to: NodeId(1),
                msg: Ping(7)
            }
        );
        assert_eq!(
            effects[1],
            Effect::SetTimer {
                tag: TimerTag(9),
                at: SimInstant::from_nanos(1_500_000_000)
            }
        );
        assert_eq!(effects[2], Effect::CancelTimer { tag: TimerTag(4) });
        assert_eq!(effects[3], Effect::Emit("leader-changed"));
    }

    #[test]
    fn drain_leaves_context_reusable() {
        let mut ctx: Context<Ping, ()> = Context::new(SimInstant::ZERO, NodeId(0), 0);
        ctx.send(NodeId(1), Ping(1));
        assert_eq!(ctx.drain_effects().len(), 1);
        assert_eq!(ctx.effect_count(), 0);
        ctx.send(NodeId(2), Ping(2));
        assert_eq!(ctx.drain_effects().len(), 1);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(format!("{:?}", NodeId(5)), "n5");
        assert_eq!(NodeId(5).index(), 5);
        assert_eq!(NodeId::from(8u32), NodeId(8));
    }

    #[test]
    fn wire_size_of_builtin_impls() {
        assert_eq!(().wire_size(), 0);
        assert_eq!(vec![0u8; 10].wire_size(), 10);
    }
}
