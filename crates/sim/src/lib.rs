//! # sle-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate on which the stable leader-election service
//! (the reproduction of Schiper & Toueg, *"A Robust and Lightweight Stable
//! Leader Election Service for Dynamic Systems"*, DSN 2008) is evaluated.
//! The paper ran its experiments on a 12-workstation cluster for days at a
//! time, injecting workstation crashes, message losses, message delays and
//! link crashes with dedicated modules. This crate provides the equivalent
//! apparatus in virtual time:
//!
//! * [`time`] — nanosecond-resolution virtual instants and durations,
//! * [`rng`] — deterministic, fork-able random number generation,
//! * [`actor`] — the sans-io protocol-node abstraction (messages, timers,
//!   application events) shared with the real-time runtime,
//! * [`dense`] — allocation-light maps/indices for hot per-node state,
//! * [`medium`] — the pluggable link-model interface,
//! * [`wheel`] — the hierarchical timer wheel backing the event loop
//!   (`O(1)` scheduling at any population of pending timers),
//! * [`world`] — the event loop with node crash/recovery support,
//! * [`observer`] — hooks from which the experiment harness computes the
//!   paper's QoS metrics.
//!
//! ## Example
//!
//! ```
//! use sle_sim::prelude::*;
//!
//! // A node that emits one event per second.
//! struct Ticker;
//! impl Actor for Ticker {
//!     type Msg = ();
//!     type Event = u64;
//!     fn on_start(&mut self, ctx: &mut Context<(), u64>) {
//!         ctx.set_timer_after(TimerTag(0), SimDuration::from_secs(1));
//!     }
//!     fn on_message(&mut self, _: NodeId, _: (), _: &mut Context<(), u64>) {}
//!     fn on_timer(&mut self, _: TimerTag, ctx: &mut Context<(), u64>) {
//!         ctx.emit(ctx.now().as_nanos());
//!         ctx.set_timer_after(TimerTag(0), SimDuration::from_secs(1));
//!     }
//! }
//!
//! let mut world = World::new(1, Box::new(|_, _| Ticker), PerfectMedium, 1);
//! let mut counter = CountingObserver::new();
//! world.run_for(SimDuration::from_secs(10), &mut counter);
//! assert_eq!(counter.events, 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod actor;
pub mod dense;
pub mod medium;
pub mod observer;
pub mod par;
pub mod rng;
pub mod time;
pub mod timeline;
pub mod wheel;
pub mod world;

/// Convenient re-exports of the items most users need.
pub mod prelude {
    pub use crate::actor::{Actor, Context, Effect, NodeId, TimerTag, WireSize};
    pub use crate::medium::{
        Fate, FixedDelayMedium, Medium, PerfectMedium, SteppedDelayMedium, Verdict,
    };
    pub use crate::observer::{CountingObserver, NullObserver, Observer, PairObserver};
    pub use crate::par::{ParWorld, SharedActorFactory};
    pub use crate::rng::SimRng;
    pub use crate::time::{SimDuration, SimInstant};
    pub use crate::timeline::Timeline;
    pub use crate::wheel::{EventWheel, TimerWheel};
    pub use crate::world::{ActorFactory, World};
}

pub use actor::{Actor, Context, Effect, NodeId, TimerTag, WireSize};
pub use dense::{SlotIndex, TagMap};
pub use medium::{Fate, FixedDelayMedium, Medium, PerfectMedium, SteppedDelayMedium, Verdict};
pub use observer::{CountingObserver, NullObserver, Observer, PairObserver};
pub use par::{ParWorld, SharedActorFactory};
pub use rng::SimRng;
pub use time::{SimDuration, SimInstant};
pub use timeline::Timeline;
pub use wheel::{EventWheel, TimerWheel};
pub use world::{ActorFactory, World};
