//! Observation hooks for simulations.
//!
//! An [`Observer`] is notified of everything that happens while a
//! [`World`](crate::world::World) runs: messages sent, dropped and
//! delivered, timers firing, nodes crashing and recovering, and
//! application-level events emitted by actors. The experiment harness uses
//! observers to compute the paper's QoS metrics (leader recovery time,
//! mistake rate, leader availability) and the CPU/bandwidth overheads of
//! Figure 6 without touching protocol code.

use crate::actor::NodeId;
use crate::time::SimInstant;

/// Receives a callback for every observable simulation event.
///
/// All methods have empty default implementations so observers only override
/// what they need.
pub trait Observer<E> {
    /// An actor handed a message to the network.
    fn message_sent(&mut self, _now: SimInstant, _from: NodeId, _to: NodeId, _bytes: usize) {}

    /// The network dropped a message (loss, or the link/destination was down).
    fn message_dropped(&mut self, _now: SimInstant, _from: NodeId, _to: NodeId, _bytes: usize) {}

    /// A message reached its destination and was handled.
    fn message_delivered(&mut self, _now: SimInstant, _from: NodeId, _to: NodeId, _bytes: usize) {}

    /// A timer fired and was handled by its actor.
    fn timer_fired(&mut self, _now: SimInstant, _node: NodeId) {}

    /// A node crashed (its actor state is discarded).
    fn node_crashed(&mut self, _now: SimInstant, _node: NodeId) {}

    /// A node recovered (a fresh actor was started with a new incarnation).
    fn node_recovered(&mut self, _now: SimInstant, _node: NodeId, _incarnation: u64) {}

    /// An actor emitted an application-level event.
    fn event_emitted(&mut self, _now: SimInstant, _node: NodeId, _event: &E) {}
}

/// An observer that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl<E> Observer<E> for NullObserver {}

/// A simple counting observer, convenient in tests and micro-benchmarks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingObserver {
    /// Number of messages handed to the network.
    pub sent: u64,
    /// Number of messages dropped by the network.
    pub dropped: u64,
    /// Number of messages delivered.
    pub delivered: u64,
    /// Number of timer firings handled.
    pub timers: u64,
    /// Number of node crashes.
    pub crashes: u64,
    /// Number of node recoveries.
    pub recoveries: u64,
    /// Number of application events emitted.
    pub events: u64,
    /// Total payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
}

impl CountingObserver {
    /// Creates a fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<E> Observer<E> for CountingObserver {
    fn message_sent(&mut self, _now: SimInstant, _from: NodeId, _to: NodeId, bytes: usize) {
        self.sent += 1;
        self.bytes_sent += bytes as u64;
    }

    fn message_dropped(&mut self, _now: SimInstant, _from: NodeId, _to: NodeId, _bytes: usize) {
        self.dropped += 1;
    }

    fn message_delivered(&mut self, _now: SimInstant, _from: NodeId, _to: NodeId, bytes: usize) {
        self.delivered += 1;
        self.bytes_delivered += bytes as u64;
    }

    fn timer_fired(&mut self, _now: SimInstant, _node: NodeId) {
        self.timers += 1;
    }

    fn node_crashed(&mut self, _now: SimInstant, _node: NodeId) {
        self.crashes += 1;
    }

    fn node_recovered(&mut self, _now: SimInstant, _node: NodeId, _incarnation: u64) {
        self.recoveries += 1;
    }

    fn event_emitted(&mut self, _now: SimInstant, _node: NodeId, _event: &E) {
        self.events += 1;
    }
}

/// Combines two observers, forwarding every callback to both.
///
/// Useful when an experiment wants both traffic accounting and
/// leadership-interval tracking without merging the two collectors.
#[derive(Debug, Default)]
pub struct PairObserver<A, B> {
    /// First observer.
    pub first: A,
    /// Second observer.
    pub second: B,
}

impl<A, B> PairObserver<A, B> {
    /// Creates a pair from two observers.
    pub fn new(first: A, second: B) -> Self {
        PairObserver { first, second }
    }
}

impl<E, A: Observer<E>, B: Observer<E>> Observer<E> for PairObserver<A, B> {
    fn message_sent(&mut self, now: SimInstant, from: NodeId, to: NodeId, bytes: usize) {
        self.first.message_sent(now, from, to, bytes);
        self.second.message_sent(now, from, to, bytes);
    }

    fn message_dropped(&mut self, now: SimInstant, from: NodeId, to: NodeId, bytes: usize) {
        self.first.message_dropped(now, from, to, bytes);
        self.second.message_dropped(now, from, to, bytes);
    }

    fn message_delivered(&mut self, now: SimInstant, from: NodeId, to: NodeId, bytes: usize) {
        self.first.message_delivered(now, from, to, bytes);
        self.second.message_delivered(now, from, to, bytes);
    }

    fn timer_fired(&mut self, now: SimInstant, node: NodeId) {
        self.first.timer_fired(now, node);
        self.second.timer_fired(now, node);
    }

    fn node_crashed(&mut self, now: SimInstant, node: NodeId) {
        self.first.node_crashed(now, node);
        self.second.node_crashed(now, node);
    }

    fn node_recovered(&mut self, now: SimInstant, node: NodeId, incarnation: u64) {
        self.first.node_recovered(now, node, incarnation);
        self.second.node_recovered(now, node, incarnation);
    }

    fn event_emitted(&mut self, now: SimInstant, node: NodeId, event: &E) {
        self.first.event_emitted(now, node, event);
        self.second.event_emitted(now, node, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_observer_counts() {
        let mut obs = CountingObserver::new();
        let t = SimInstant::ZERO;
        Observer::<u32>::message_sent(&mut obs, t, NodeId(0), NodeId(1), 10);
        Observer::<u32>::message_delivered(&mut obs, t, NodeId(0), NodeId(1), 10);
        Observer::<u32>::message_dropped(&mut obs, t, NodeId(0), NodeId(1), 10);
        Observer::<u32>::timer_fired(&mut obs, t, NodeId(0));
        Observer::<u32>::node_crashed(&mut obs, t, NodeId(0));
        Observer::<u32>::node_recovered(&mut obs, t, NodeId(0), 1);
        Observer::<u32>::event_emitted(&mut obs, t, NodeId(0), &42);
        assert_eq!(obs.sent, 1);
        assert_eq!(obs.delivered, 1);
        assert_eq!(obs.dropped, 1);
        assert_eq!(obs.timers, 1);
        assert_eq!(obs.crashes, 1);
        assert_eq!(obs.recoveries, 1);
        assert_eq!(obs.events, 1);
        assert_eq!(obs.bytes_sent, 10);
        assert_eq!(obs.bytes_delivered, 10);
    }

    #[test]
    fn pair_observer_forwards_to_both() {
        let mut pair = PairObserver::new(CountingObserver::new(), CountingObserver::new());
        Observer::<u32>::message_sent(&mut pair, SimInstant::ZERO, NodeId(0), NodeId(1), 5);
        Observer::<u32>::event_emitted(&mut pair, SimInstant::ZERO, NodeId(0), &1);
        assert_eq!(pair.first.sent, 1);
        assert_eq!(pair.second.sent, 1);
        assert_eq!(pair.first.events, 1);
        assert_eq!(pair.second.events, 1);
    }

    #[test]
    fn null_observer_is_a_no_op() {
        let mut obs = NullObserver;
        Observer::<u32>::message_sent(&mut obs, SimInstant::ZERO, NodeId(0), NodeId(1), 5);
    }
}
