//! Virtual time primitives used throughout the simulator and the protocol
//! state machines.
//!
//! Protocol code never reads a wall clock; it is always handed a
//! [`SimInstant`] by whichever runtime drives it (the discrete-event
//! [`World`](crate::world::World) or the real-time runtime in `sle-core`).
//! Durations and instants are kept as separate newtypes so that adding two
//! instants, a classic source of timing bugs, does not type-check.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time with nanosecond resolution.
///
/// ```
/// use sle_sim::time::SimDuration;
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_secs(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs saturate to zero; values beyond the
    /// representable range saturate to [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Returns the duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the duration by a floating point factor, saturating at the
    /// bounds of the representable range.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nanos = self.0;
        if nanos == 0 {
            write!(f, "0s")
        } else if nanos.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", nanos / 1_000_000_000)
        } else if nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if nanos >= 1_000 {
            write!(f, "{:.3}us", nanos as f64 / 1e3)
        } else {
            write!(f, "{}ns", nanos)
        }
    }
}

/// Converts a wall-clock duration, saturating past ~584 years.
///
/// The real-time runtime and the examples use this to render measured
/// wall-clock times in the same human units (`1.287s`, `86.000ms`) the
/// simulator reports:
///
/// ```
/// use sle_sim::time::SimDuration;
/// let d = SimDuration::from(std::time::Duration::from_millis(1500));
/// assert_eq!(d.to_string(), "1.500s");
/// ```
impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.as_secs_f64() / rhs.as_secs_f64()
    }
}

/// A point in virtual time, measured as the offset from the start of the
/// simulation (or of the real-time runtime).
///
/// ```
/// use sle_sim::time::{SimDuration, SimInstant};
/// let t0 = SimInstant::ZERO;
/// let t1 = t0 + SimDuration::from_secs(2);
/// assert_eq!(t1 - t0, SimDuration::from_secs(2));
/// assert!(t1 > t0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The start of time.
    pub const ZERO: SimInstant = SimInstant(0);
    /// A far-future instant, useful as a sentinel deadline.
    pub const FAR_FUTURE: SimInstant = SimInstant(u64::MAX);

    /// Creates an instant from whole nanoseconds since the start of time.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimInstant(nanos)
    }

    /// Creates an instant `secs` fractional seconds after the start of time.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimInstant(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Returns the instant as nanoseconds since the start of time.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since the start of time.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the elapsed duration since `earlier`, or zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimInstant> {
        self.0.checked_add(d.as_nanos()).map(SimInstant)
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimInstant) -> SimInstant {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimInstant) -> SimInstant {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.as_nanos());
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_sub(rhs.as_nanos()))
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
        assert_eq!(
            SimDuration::from_millis_f64(2.5),
            SimDuration::from_micros(2500)
        );
    }

    #[test]
    fn duration_from_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(300);
        let b = SimDuration::from_millis(200);
        assert_eq!(a + b, SimDuration::from_millis(500));
        assert_eq!(a - b, SimDuration::from_millis(100));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a * 3, SimDuration::from_millis(900));
        assert_eq!(a / 3, SimDuration::from_millis(100));
        assert!((a / b - 1.5).abs() < 1e-12);
        assert_eq!(a.mul_f64(0.5), SimDuration::from_millis(150));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_secs(5);
        let t2 = t1 + SimDuration::from_millis(500);
        assert_eq!(t2 - t0, SimDuration::from_millis(5500));
        assert_eq!(t0.saturating_since(t2), SimDuration::ZERO);
        assert_eq!(t2.saturating_since(t0), SimDuration::from_millis(5500));
        assert_eq!(t2 - SimDuration::from_millis(500), t1);
        assert_eq!(t1.min(t2), t1);
        assert_eq!(t1.max(t2), t2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert!(SimInstant::from_secs_f64(1.5)
            .to_string()
            .starts_with("1.5"));
        assert_eq!(
            format!("{:?}", SimInstant::ZERO + SimDuration::from_secs(2)),
            "t+2s"
        );
    }

    #[test]
    fn instant_checked_add() {
        assert!(SimInstant::FAR_FUTURE
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimInstant::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimInstant::from_nanos(1_000_000_000))
        );
    }
}
