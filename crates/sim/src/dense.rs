//! Dense, allocation-light containers for hot per-node state.
//!
//! The event loop touches per-node timer state on every timer arm, cancel
//! and fire. `std::collections::HashMap<TimerTag, u64>` pays SipHash plus a
//! heap-allocated table per node; at the million-process frontier that is
//! millions of hashes per virtual second on state that is two machine words
//! per entry. [`TagMap`] is an open-addressing `u64 → u64` map with a
//! multiplicative hash, linear probing and backward-shift deletion — no
//! per-entry allocation, no hasher state, deterministic iteration-free API.

/// Sentinel marking an empty slot. The key `u64::MAX` itself is still
/// usable: it is stored out-of-line in a dedicated field.
const EMPTY: u64 = u64::MAX;

/// Fibonacci hashing constant (2^64 / φ, odd).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// An open-addressing `u64 → u64` hash map specialised for timer tables.
///
/// * power-of-two capacity, multiplicative (Fibonacci) hashing,
/// * linear probing with backward-shift deletion (no tombstones),
/// * the full key domain is supported — `u64::MAX` is kept out-of-line.
///
/// ```
/// use sle_sim::dense::TagMap;
/// let mut m = TagMap::new();
/// m.insert(7, 100);
/// m.insert(7, 200);
/// assert_eq!(m.get(7), Some(200));
/// assert_eq!(m.remove(7), Some(200));
/// assert!(m.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct TagMap {
    /// Slot keys; `EMPTY` marks a free slot. Length is zero or a power of two.
    keys: Vec<u64>,
    vals: Vec<u64>,
    /// Number of occupied slots in `keys` (excludes the reserved key).
    occupied: usize,
    /// Value for the key `u64::MAX`, which cannot live in `keys`.
    reserved: Option<u64>,
}

impl TagMap {
    /// Creates an empty map. Does not allocate until the first insert.
    pub fn new() -> Self {
        TagMap::default()
    }

    /// Number of entries in the map.
    pub fn len(&self) -> usize {
        self.occupied + usize::from(self.reserved.is_some())
    }

    /// Returns true if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // keys.len() is a power of two; multiply-shift spreads the high bits.
        let bits = self.keys.len().trailing_zeros();
        (key.wrapping_mul(HASH_MUL) >> (64 - bits)) as usize
    }

    /// Returns the value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        if key == EMPTY {
            return self.reserved;
        }
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `value` under `key`, returning the previous value if present.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        if key == EMPTY {
            return self.reserved.replace(value);
        }
        // Grow at 7/8 occupancy so probe chains stay short.
        if self.keys.is_empty() || (self.occupied + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(std::mem::replace(&mut self.vals[i], value));
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = value;
                self.occupied += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        if key == EMPTY {
            return self.reserved.take();
        }
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            i = (i + 1) & mask;
        }
        let removed = self.vals[i];
        self.occupied -= 1;
        // Backward-shift deletion: pull every displaced follower one slot
        // toward its home so lookups never need tombstones.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let home = self.home(k);
            // `k` may fill the hole iff doing so does not move it before its
            // home slot: its probe distance must reach back to the hole.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        Some(removed)
    }

    /// Removes every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.occupied = 0;
        self.reserved = None;
    }

    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(8);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals = vec![0; new_cap];
        self.occupied = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

/// A dense index from a `u32` id space (node ids, group ids) to `u32` slots.
///
/// Backed by a sorted vector of `(id, slot)` pairs: lookups are binary
/// searches over contiguous memory, iteration is automatically in id order
/// (deterministic), and the whole index for a bounded peer set fits in a
/// cache line or two. This is the interning structure behind the dense
/// arenas — ids are interned once at join/hello time, hot paths then work
/// with `u32` slot indices.
///
/// ```
/// use sle_sim::dense::SlotIndex;
/// let mut ix = SlotIndex::new();
/// ix.insert(40, 0);
/// ix.insert(7, 1);
/// assert_eq!(ix.get(7), Some(1));
/// assert_eq!(ix.iter().map(|(id, _)| id).collect::<Vec<_>>(), vec![7, 40]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SlotIndex {
    entries: Vec<(u32, u32)>,
}

impl SlotIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        SlotIndex::default()
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if no ids are interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the slot for `id`, if interned.
    #[inline]
    pub fn get(&self, id: u32) -> Option<u32> {
        self.entries
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Maps `id` to `slot`, returning the previous slot if it was interned.
    pub fn insert(&mut self, id: u32, slot: u32) -> Option<u32> {
        match self.entries.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, slot)),
            Err(i) => {
                self.entries.insert(i, (id, slot));
                None
            }
        }
    }

    /// Removes `id`, returning its slot if it was interned.
    pub fn remove(&mut self, id: u32) -> Option<u32> {
        match self.entries.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterates `(id, slot)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Removes every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagmap_roundtrip_and_overwrite() {
        let mut m = TagMap::new();
        assert_eq!(m.get(3), None);
        assert_eq!(m.insert(3, 10), None);
        assert_eq!(m.insert(3, 11), Some(10));
        assert_eq!(m.get(3), Some(11));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(3), Some(11));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn tagmap_survives_growth() {
        let mut m = TagMap::new();
        for k in 0..1000u64 {
            m.insert(k * 0x1_0000_0001, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k * 0x1_0000_0001), Some(k));
        }
    }

    #[test]
    fn tagmap_backward_shift_keeps_probe_chains_intact() {
        // Insert clustered keys, remove from the middle of the cluster, and
        // verify every survivor is still reachable (a tombstone-free delete
        // that breaks a probe chain would lose them).
        let mut m = TagMap::new();
        for k in 0..256u64 {
            m.insert(k, k + 1000);
        }
        for k in (0..256u64).step_by(2) {
            assert_eq!(m.remove(k), Some(k + 1000));
        }
        for k in 0..256u64 {
            let expect = if k % 2 == 0 { None } else { Some(k + 1000) };
            assert_eq!(m.get(k), expect, "key {k}");
        }
        assert_eq!(m.len(), 128);
    }

    #[test]
    fn tagmap_supports_the_sentinel_key() {
        let mut m = TagMap::new();
        assert_eq!(m.insert(u64::MAX, 5), None);
        assert_eq!(m.get(u64::MAX), Some(5));
        assert_eq!(m.len(), 1);
        assert_eq!(m.insert(u64::MAX, 6), Some(5));
        assert_eq!(m.remove(u64::MAX), Some(6));
        assert!(m.is_empty());
    }

    #[test]
    fn tagmap_clear_resets_without_shrinking() {
        let mut m = TagMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        m.insert(u64::MAX, 1);
        m.clear();
        assert!(m.is_empty());
        for k in 0..100 {
            assert_eq!(m.get(k), None);
        }
        m.insert(2, 3);
        assert_eq!(m.get(2), Some(3));
    }

    #[test]
    fn slot_index_sorted_semantics() {
        let mut ix = SlotIndex::new();
        assert_eq!(ix.insert(40, 0), None);
        assert_eq!(ix.insert(7, 1), None);
        assert_eq!(ix.insert(19, 2), None);
        assert_eq!(ix.insert(7, 9), Some(1));
        assert_eq!(ix.get(19), Some(2));
        assert_eq!(ix.get(8), None);
        let ids: Vec<u32> = ix.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![7, 19, 40]);
        assert_eq!(ix.remove(19), Some(2));
        assert_eq!(ix.remove(19), None);
        assert_eq!(ix.len(), 2);
    }
}
