//! A hierarchical timer wheel: the event queue of the [`World`].
//!
//! The simulator used to keep every pending event in one sorted timeline (a
//! binary heap), paying `O(log n)` per schedule and per pop. At the scale
//! the ROADMAP targets — thousands of groups, each arming heartbeat and
//! failure-detector timers — the heap becomes the hot path of the whole
//! simulation. An [`EventWheel`] replaces it with the classic hashed
//! hierarchical timer wheel (Varghese & Lauck, SOSP '87): scheduling is
//! `O(1)` (a shift, a mask, a `Vec::push`), cancellation stays the lazy
//! generation-check it always was, and popping amortises to `O(1)` through
//! per-level occupancy bitmaps (one `u64` per level, so "find the next
//! non-empty slot" is a single `trailing_zeros`).
//!
//! Determinism is preserved exactly: events are delivered in `(time, seq)`
//! order, the same total order the sorted timeline produced, so any
//! execution replays identically after the swap.
//!
//! # Geometry
//!
//! One tick is 2¹⁶ ns (≈ 65.5 µs). Eight levels of 64 slots each cover
//! 64⁸ ticks = 2⁴⁸ ticks = the entire `u64` nanosecond range, so there is
//! no overflow list: even a timer armed for [`SimInstant::FAR_FUTURE`]
//! lands in a (top-level) slot.
//!
//! [`World`]: crate::world::World
//! [`SimInstant::FAR_FUTURE`]: crate::time::SimInstant::FAR_FUTURE

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimInstant;

/// log2 of the tick length in nanoseconds (one tick = 65 536 ns).
const TICK_BITS: u32 = 16;
/// log2 of the number of slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels; `64^8` ticks of 2^16 ns span the whole u64 range.
const LEVELS: usize = 8;

fn tick_of(at: SimInstant) -> u64 {
    at.as_nanos() >> TICK_BITS
}

/// An event stored in the wheel.
#[derive(Debug)]
struct Entry<T> {
    at: SimInstant,
    seq: u64,
    item: T,
}

/// Entries of the tick currently being drained, ordered earliest-first.
struct Pending<T>(Entry<T>);

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // `(time, seq)` on top.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// A hierarchical timer wheel holding `(time, seq, item)` events and
/// yielding them in `(time, seq)` order.
///
/// `seq` is the caller's insertion counter; it breaks ties between events
/// scheduled for the same instant, which is what makes the simulation
/// deterministic.
///
/// ```
/// use sle_sim::time::SimInstant;
/// use sle_sim::wheel::EventWheel;
///
/// let mut wheel = EventWheel::new();
/// wheel.push(SimInstant::from_secs_f64(2.0), 1, "late");
/// wheel.push(SimInstant::from_secs_f64(1.0), 2, "early");
/// assert_eq!(wheel.peek_time(), Some(SimInstant::from_secs_f64(1.0)));
/// assert_eq!(wheel.pop().map(|(_, _, item)| item), Some("early"));
/// assert_eq!(wheel.pop().map(|(_, _, item)| item), Some("late"));
/// assert!(wheel.pop().is_none());
/// ```
pub struct EventWheel<T> {
    /// `levels[k][s]` holds entries whose tick differs from `elapsed` first
    /// (most significantly) in digit `k`, with digit value `s`.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// One occupancy bit per slot per level.
    occupied: [u64; LEVELS],
    /// The tick the wheel has drained up to: every entry still in a slot
    /// has `tick > elapsed`; entries with `tick <= elapsed` sit in
    /// `current`.
    elapsed: u64,
    /// Entries of already-reached ticks, ordered by `(time, seq)`.
    current: BinaryHeap<Pending<T>>,
    len: usize,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventWheel<T> {
    /// Creates an empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        EventWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            elapsed: 0,
            current: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` at `(at, seq)`. `O(1)`.
    ///
    /// Events are yielded in `(at, seq)` order, so callers must hand out
    /// monotonically increasing `seq` values to preserve insertion order
    /// among ties.
    pub fn push(&mut self, at: SimInstant, seq: u64, item: T) {
        self.len += 1;
        let entry = Entry { at, seq, item };
        let tick = tick_of(at);
        if tick <= self.elapsed {
            self.current.push(Pending(entry));
            return;
        }
        // The level is the most significant 6-bit digit in which `tick`
        // differs from the cursor; the slot is that digit's value. Since
        // `tick > elapsed`, the slot index always lies strictly above the
        // cursor's digit at that level, so occupied slots never wrap.
        let differing = tick ^ self.elapsed;
        let level = ((63 - differing.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// The instant of the earliest queued event, if any.
    ///
    /// Takes `&mut self` because finding the next event may cascade
    /// higher-level slots down the hierarchy (a pure relocation: no event
    /// is gained, lost or reordered by it).
    pub fn peek_time(&mut self) -> Option<SimInstant> {
        self.advance_to_next();
        self.current.peek().map(|pending| pending.0.at)
    }

    /// The earliest queued event as `(at, seq, &item)` without removing it.
    ///
    /// Like [`EventWheel::peek_time`], this may cascade slots internally,
    /// hence `&mut self`.
    pub fn peek(&mut self) -> Option<(SimInstant, u64, &T)> {
        self.advance_to_next();
        self.current
            .peek()
            .map(|pending| (pending.0.at, pending.0.seq, &pending.0.item))
    }

    /// Removes and returns the earliest event as `(at, seq, item)`.
    pub fn pop(&mut self) -> Option<(SimInstant, u64, T)> {
        self.advance_to_next();
        let Pending(entry) = self.current.pop()?;
        self.len -= 1;
        Some((entry.at, entry.seq, entry.item))
    }

    /// Moves the cursor forward until the earliest pending tick has been
    /// drained into `current` (cascading coarser levels as needed).
    fn advance_to_next(&mut self) {
        while self.current.is_empty() {
            // The earliest event lives in the lowest non-empty level's
            // lowest occupied slot: finer levels always hold nearer ticks.
            let Some(level) = (0..LEVELS).find(|&k| self.occupied[k] != 0) else {
                return;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            // Jump the cursor to the start of that slot's tick range and
            // re-home its entries, which now belong to finer levels (or,
            // at level 0, to the tick being drained).
            let shift = SLOT_BITS * level as u32;
            let above = SLOT_BITS * (level as u32 + 1);
            let prefix = if above >= 64 {
                0
            } else {
                self.elapsed & !((1u64 << above) - 1)
            };
            self.elapsed = prefix | ((slot as u64) << shift);
            self.occupied[level] &= !(1 << slot);
            let entries = std::mem::take(&mut self.levels[level][slot]);
            if level == 0 {
                // Every entry in a level-0 slot has exactly this tick.
                self.current.extend(entries.into_iter().map(Pending));
            } else {
                self.len -= entries.len();
                for entry in entries {
                    let Entry { at, seq, item } = entry;
                    self.push(at, seq, item);
                }
            }
        }
    }
}

impl<T> std::fmt::Debug for EventWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventWheel")
            .field("len", &self.len)
            .field("elapsed_tick", &self.elapsed)
            .finish()
    }
}

/// A keyed, cancelable timer facade over [`EventWheel`]: the same `O(1)`
/// hierarchical wheel, generalized over the caller's key (the sharded
/// real-time runtime in `sle-core` keys it by `(NodeId, TimerTag)`).
///
/// Scheduling a key that is already armed re-arms it (the previous deadline
/// is superseded), and [`TimerWheel::cancel`] disarms it — both in `O(1)`,
/// using the same lazy generation check the simulator's `World` uses: stale
/// wheel entries are discarded when they surface. The clock is whatever the
/// caller's [`SimInstant`]s mean — virtual time under the simulator, or
/// nanoseconds since some wall-clock epoch under a real-time runtime.
///
/// ```
/// use sle_sim::time::SimInstant;
/// use sle_sim::wheel::TimerWheel;
///
/// let mut wheel: TimerWheel<&str> = TimerWheel::new();
/// wheel.schedule("hello", SimInstant::from_secs_f64(1.0));
/// wheel.schedule("alive", SimInstant::from_secs_f64(0.5));
/// wheel.schedule("hello", SimInstant::from_secs_f64(2.0)); // re-arm
/// wheel.cancel(&"alive");
/// assert_eq!(wheel.next_deadline(), Some(SimInstant::from_secs_f64(2.0)));
/// let now = SimInstant::from_secs_f64(3.0);
/// assert_eq!(wheel.pop_due(now), Some((SimInstant::from_secs_f64(2.0), "hello")));
/// assert_eq!(wheel.pop_due(now), None);
/// ```
pub struct TimerWheel<K> {
    wheel: EventWheel<K>,
    /// Per-key arm state: the generation of the live wheel entry (its `seq`)
    /// and the deadline it was armed for. A wheel entry whose `seq` no
    /// longer matches is stale (re-armed or cancelled) and is dropped when
    /// it reaches the front.
    armed: std::collections::HashMap<K, (u64, SimInstant)>,
    generation: u64,
}

impl<K> Default for TimerWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> TimerWheel<K> {
    /// Creates an empty timer wheel.
    pub fn new() -> Self {
        TimerWheel {
            wheel: EventWheel::new(),
            armed: std::collections::HashMap::new(),
            generation: 0,
        }
    }
}

impl<K: Clone + Eq + std::hash::Hash> TimerWheel<K> {
    /// Number of armed timers (stale wheel entries do not count).
    pub fn len(&self) -> usize {
        self.armed.len()
    }

    /// True if no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Arms (or re-arms) `key` to fire at `at`. `O(1)`.
    ///
    /// Generations are handed out in call order, so two timers armed for
    /// the same instant fire in the order they were (most recently) armed —
    /// the same deterministic tie-break the simulator uses.
    pub fn schedule(&mut self, key: K, at: SimInstant) {
        self.generation += 1;
        self.armed.insert(key.clone(), (self.generation, at));
        self.wheel.push(at, self.generation, key);
    }

    /// Disarms `key` if it is armed. `O(1)` (the wheel entry is dropped
    /// lazily when it surfaces).
    pub fn cancel(&mut self, key: &K) {
        self.armed.remove(key);
    }

    /// The deadline `key` is currently armed for, if any.
    pub fn deadline_of(&self, key: &K) -> Option<SimInstant> {
        self.armed.get(key).map(|&(_, at)| at)
    }

    /// The earliest live deadline, if any timer is armed.
    ///
    /// Takes `&mut self`: stale entries in front are discarded and wheel
    /// slots may cascade while searching.
    pub fn next_deadline(&mut self) -> Option<SimInstant> {
        loop {
            let (at, seq, key) = self.wheel.peek()?;
            match self.armed.get(key) {
                Some(&(generation, _)) if generation == seq => return Some(at),
                _ => {
                    // Re-armed or cancelled since it was pushed: discard.
                    self.wheel.pop();
                }
            }
        }
    }

    /// Removes and returns the earliest timer whose deadline is `<= now`,
    /// as `(deadline, key)` — or `None` when nothing is due yet.
    pub fn pop_due(&mut self, now: SimInstant) -> Option<(SimInstant, K)> {
        let at = self.next_deadline()?;
        if at > now {
            return None;
        }
        let (at, _seq, key) = self.wheel.pop().expect("next_deadline saw an entry");
        self.armed.remove(&key);
        Some((at, key))
    }
}

impl<K> std::fmt::Debug for TimerWheel<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("armed", &self.armed.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    #[test]
    fn yields_in_time_then_seq_order() {
        let mut wheel = EventWheel::new();
        wheel.push(SimInstant::from_nanos(500), 3, 'c');
        wheel.push(SimInstant::from_nanos(500), 1, 'a');
        wheel.push(SimInstant::from_nanos(100), 2, 'b');
        wheel.push(SimInstant::from_nanos(500), 2, 'd');
        let order: Vec<char> = std::iter::from_fn(|| wheel.pop().map(|(_, _, c)| c)).collect();
        assert_eq!(order, vec!['b', 'a', 'd', 'c']);
        assert!(wheel.is_empty());
    }

    #[test]
    fn events_in_the_same_tick_still_order_by_exact_nanos() {
        // 2^16 ns per tick: 10 and 20000 ns share tick 0 but must pop in
        // nanosecond order regardless of insertion order.
        let mut wheel = EventWheel::new();
        wheel.push(SimInstant::from_nanos(20_000), 1, "later");
        wheel.push(SimInstant::from_nanos(10), 2, "sooner");
        assert_eq!(wheel.pop().map(|(_, _, i)| i), Some("sooner"));
        assert_eq!(wheel.pop().map(|(_, _, i)| i), Some("later"));
    }

    #[test]
    fn far_future_events_are_representable() {
        let mut wheel = EventWheel::new();
        wheel.push(SimInstant::FAR_FUTURE, 1, "doomsday");
        wheel.push(SimInstant::from_secs_f64(1.0), 2, "soon");
        assert_eq!(wheel.pop().map(|(_, _, i)| i), Some("soon"));
        assert_eq!(wheel.peek_time(), Some(SimInstant::FAR_FUTURE));
        assert_eq!(wheel.pop().map(|(_, _, i)| i), Some("doomsday"));
        assert_eq!(wheel.peek_time(), None);
    }

    #[test]
    fn pushing_at_or_before_the_cursor_still_delivers() {
        let mut wheel = EventWheel::new();
        wheel.push(SimInstant::from_secs_f64(5.0), 1, "first");
        assert_eq!(wheel.pop().map(|(_, _, i)| i), Some("first"));
        // The cursor now sits at t=5 s; a push for an earlier instant (the
        // World never does this, but the wheel must not lose it) is
        // delivered immediately rather than silently dropped.
        wheel.push(SimInstant::from_secs_f64(1.0), 2, "stale");
        wheel.push(SimInstant::from_secs_f64(9.0), 3, "later");
        assert_eq!(wheel.pop().map(|(_, _, i)| i), Some("stale"));
        assert_eq!(wheel.pop().map(|(_, _, i)| i), Some("later"));
    }

    #[test]
    fn matches_a_sorted_model_over_random_workloads() {
        // Differential test against a plain sorted model: interleaved
        // pushes and pops across the full range of delays (same tick,
        // same level, cross-level, multi-day) must agree exactly.
        let mut rng = SimRng::seed_from(0xD1CE);
        for _case in 0..20 {
            let mut wheel = EventWheel::new();
            let mut model: Vec<(SimInstant, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut now = SimInstant::ZERO;
            for _step in 0..400 {
                let pushes = rng.uniform_usize(4);
                for _ in 0..pushes {
                    let exponent = 4 + rng.uniform_usize(40) as u32;
                    let delay = rng.next_u64() % (1u64 << exponent);
                    let at = now + SimDuration::from_nanos(delay);
                    wheel.push(at, seq, seq);
                    model.push((at, seq));
                    seq += 1;
                }
                model.sort();
                let pops = rng.uniform_usize(4);
                for _ in 0..pops {
                    let expected = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    assert_eq!(wheel.peek_time(), expected.map(|(at, _)| at));
                    let got = wheel.pop().map(|(at, s, _)| (at, s));
                    assert_eq!(got, expected);
                    if let Some((at, _)) = got {
                        now = at; // the simulator's clock follows the pops
                    }
                }
                assert_eq!(wheel.len(), model.len());
            }
            // Drain what's left: still in exact order.
            while let Some(expected) = if model.is_empty() {
                None
            } else {
                Some(model.remove(0))
            } {
                assert_eq!(wheel.pop().map(|(at, s, _)| (at, s)), Some(expected));
            }
            assert!(wheel.is_empty());
            assert_eq!(wheel.pop().map(|(_, _, i)| i), None);
        }
    }

    #[test]
    fn len_tracks_cascades() {
        let mut wheel = EventWheel::new();
        // A spread of delays guaranteed to occupy several levels.
        for (i, secs) in [0.0001, 0.01, 1.0, 70.0, 5000.0].iter().enumerate() {
            wheel.push(SimInstant::from_secs_f64(*secs), i as u64, i);
        }
        assert_eq!(wheel.len(), 5);
        assert!(!wheel.is_empty());
        let mut seen = 0;
        while wheel.pop().is_some() {
            seen += 1;
            assert_eq!(wheel.len(), 5 - seen);
        }
        assert_eq!(seen, 5);
    }

    #[test]
    fn debug_formatting_is_compact() {
        let wheel: EventWheel<u8> = EventWheel::new();
        let rendered = format!("{wheel:?}");
        assert!(rendered.contains("EventWheel"));
        assert!(rendered.contains("len"));
        let timers: TimerWheel<u8> = TimerWheel::default();
        assert!(format!("{timers:?}").contains("TimerWheel"));
    }

    #[test]
    fn timer_wheel_rearms_and_cancels() {
        let mut wheel: TimerWheel<(u32, u32)> = TimerWheel::new();
        assert!(wheel.is_empty());
        wheel.schedule((0, 1), SimInstant::from_nanos(500));
        wheel.schedule((0, 2), SimInstant::from_nanos(200));
        wheel.schedule((1, 1), SimInstant::from_nanos(300));
        assert_eq!(wheel.len(), 3);
        // Re-arm supersedes the earlier deadline...
        wheel.schedule((0, 2), SimInstant::from_nanos(900));
        assert_eq!(wheel.len(), 3);
        assert_eq!(
            wheel.deadline_of(&(0, 2)),
            Some(SimInstant::from_nanos(900))
        );
        // ...and cancel disarms entirely.
        wheel.cancel(&(1, 1));
        assert_eq!(wheel.deadline_of(&(1, 1)), None);
        assert_eq!(wheel.next_deadline(), Some(SimInstant::from_nanos(500)));

        assert_eq!(wheel.pop_due(SimInstant::from_nanos(100)), None);
        assert_eq!(
            wheel.pop_due(SimInstant::from_nanos(1_000)),
            Some((SimInstant::from_nanos(500), (0, 1)))
        );
        assert_eq!(
            wheel.pop_due(SimInstant::from_nanos(1_000)),
            Some((SimInstant::from_nanos(900), (0, 2)))
        );
        assert_eq!(wheel.pop_due(SimInstant::FAR_FUTURE), None);
        assert!(wheel.is_empty());
    }

    #[test]
    fn timer_wheel_matches_a_sorted_model_over_random_workloads() {
        // Differential test against a sorted map model: random interleaved
        // schedules (often re-arming a live key), cancels and pops must
        // agree with the model exactly.
        let mut rng = SimRng::seed_from(0xFACE);
        for _case in 0..20 {
            let mut wheel: TimerWheel<u32> = TimerWheel::new();
            let mut model: std::collections::BTreeMap<u32, (SimInstant, u64)> =
                std::collections::BTreeMap::new();
            let mut order = 0u64;
            let mut now = SimInstant::ZERO;
            for _step in 0..300 {
                for _ in 0..rng.uniform_usize(4) {
                    let key = rng.next_u64() as u32 % 24;
                    let exponent = 4 + rng.uniform_usize(38) as u32;
                    let at = now + SimDuration::from_nanos(rng.next_u64() % (1u64 << exponent));
                    order += 1;
                    wheel.schedule(key, at);
                    model.insert(key, (at, order));
                }
                if rng.uniform_usize(3) == 0 {
                    let key = rng.next_u64() as u32 % 24;
                    wheel.cancel(&key);
                    model.remove(&key);
                }
                assert_eq!(wheel.len(), model.len());
                let expected_next = model.values().map(|&(at, _)| at).min();
                assert_eq!(wheel.next_deadline(), expected_next);
                // Advance time and drain everything now due, in order.
                now += SimDuration::from_nanos(rng.next_u64() % (1u64 << 24));
                loop {
                    let due = model
                        .iter()
                        .filter(|(_, &(at, _))| at <= now)
                        .min_by_key(|(_, &(at, ord))| (at, ord))
                        .map(|(&key, &(at, _))| (at, key));
                    assert_eq!(wheel.pop_due(now), due);
                    match due {
                        Some((_, key)) => {
                            model.remove(&key);
                        }
                        None => break,
                    }
                }
            }
        }
    }
}
