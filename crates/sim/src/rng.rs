//! Deterministic random number generation for simulations.
//!
//! Every stochastic decision in an experiment (message losses, delays, crash
//! times, link outages) is drawn from a [`SimRng`] seeded from the experiment
//! seed, so a given scenario is exactly reproducible. Independent substreams
//! can be forked with [`SimRng::fork`] so that, e.g., the link model and the
//! crash injector do not perturb each other's sequences when one of them
//! changes how many samples it draws.

use crate::time::SimDuration;

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable random number generator with helpers for the
/// distributions used by the DSN 2008 experiments.
///
/// ```
/// use sle_sim::rng::SimRng;
/// use sle_sim::time::SimDuration;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mean = SimDuration::from_millis(100);
/// let sample = a.exponential(mean);
/// assert!(sample > SimDuration::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256++ state (self-contained so the simulator has no external
    /// dependencies; the distribution helpers below are all inverse-CDF
    /// based, so quality requirements are modest).
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; splitmix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if state == [0; 4] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { state }
    }

    /// Forks an independent substream labelled by `label`.
    ///
    /// The substream is a pure function of the parent's seed position and the
    /// label, so forking is itself deterministic.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.next_u64();
        // SplitMix64-style mixing of the base state and the label keeps the
        // substreams statistically independent for practical purposes.
        let mut z = base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from(z)
    }

    /// Returns the next raw 64-bit value (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits give the standard [0, 1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "uniform_range: bounds must be finite with lo <= hi"
        );
        if lo == hi {
            lo
        } else {
            lo + self.uniform_f64() * (hi - lo)
        }
    }

    /// Returns a uniformly distributed integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize: n must be positive");
        // The modulo bias is below 2^-32 for any n a simulation uses.
        (self.next_u64() % n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_f64() < p
        }
    }

    /// Samples an exponentially distributed duration with the given mean.
    ///
    /// This is the distribution the paper uses for message delays, workstation
    /// crash/recovery inter-arrival times and link crash/recovery times.
    /// A zero mean yields a zero duration.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        // Inverse-CDF sampling; 1 - U avoids ln(0).
        let u: f64 = 1.0 - self.uniform_f64();
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Samples an exponentially distributed duration with mean given in
    /// fractional seconds.
    pub fn exponential_secs(&mut self, mean_secs: f64) -> SimDuration {
        self.exponential(SimDuration::from_secs_f64(mean_secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut f1 = parent1.fork(1);
        let mut f2 = parent2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut parent3 = SimRng::seed_from(99);
        let mut g1 = parent3.fork(2);
        // Different labels should (overwhelmingly) give different streams.
        assert_ne!(f1.next_u64(), g1.next_u64());
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = SimRng::seed_from(1);
        assert!(!rng.bernoulli(0.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn bernoulli_rate_roughly_matches_p() {
        let mut rng = SimRng::seed_from(1234);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.1)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut rng = SimRng::seed_from(5678);
        let mean = SimDuration::from_millis(100);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_secs_f64()).sum();
        let observed = total / n as f64;
        assert!((observed - 0.1).abs() < 0.005, "observed mean = {observed}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(rng.exponential(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let x = rng.uniform_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform_range(5.0, 5.0), 5.0);
        for _ in 0..100 {
            assert!(rng.uniform_usize(4) < 4);
        }
    }
}
