//! Piecewise-constant timelines of simulation parameters.
//!
//! Several models need "value X until time t, then value Y": drifting link
//! behaviour, stepped delivery delays, scheduled workload phases. A
//! [`Timeline`] is that shape, shared so every model uses the same builder
//! rules (strictly increasing phase starts, first phase at time zero) and
//! the same lookup semantics.

use crate::time::SimInstant;

/// A piecewise-constant function of simulation time.
///
/// ```
/// use sle_sim::time::SimInstant;
/// use sle_sim::timeline::Timeline;
///
/// let speed = Timeline::new(10)
///     .then_at(SimInstant::from_secs_f64(5.0), 100);
/// assert_eq!(speed.at(SimInstant::ZERO), 10);
/// assert_eq!(speed.at(SimInstant::from_secs_f64(7.0)), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline<T> {
    /// `(effective from, value)` pairs, sorted by time; the first entry
    /// starts at time zero.
    phases: Vec<(SimInstant, T)>,
}

impl<T: Copy> Timeline<T> {
    /// A timeline that holds `initial` from time zero.
    pub fn new(initial: T) -> Self {
        Timeline {
            phases: vec![(SimInstant::ZERO, initial)],
        }
    }

    /// Switches to `value` from `at` onwards.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not later than the previous phase start.
    pub fn then_at(mut self, at: SimInstant, value: T) -> Self {
        let last = self.phases.last().expect("phases are never empty").0;
        assert!(
            at > last,
            "timeline phases must be strictly increasing in time"
        );
        self.phases.push((at, value));
        self
    }

    /// The phases of the timeline, in time order.
    pub fn phases(&self) -> &[(SimInstant, T)] {
        &self.phases
    }

    /// The value in force at `now`.
    pub fn at(&self, now: SimInstant) -> T {
        self.phases
            .iter()
            .rev()
            .find(|(from, _)| *from <= now)
            .map(|(_, value)| *value)
            .expect("the first phase starts at time zero")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_phase_holds_forever() {
        let t = Timeline::new("a");
        assert_eq!(t.at(SimInstant::ZERO), "a");
        assert_eq!(t.at(SimInstant::FAR_FUTURE), "a");
        assert_eq!(t.phases().len(), 1);
    }

    #[test]
    fn lookup_uses_the_latest_started_phase() {
        let t = Timeline::new(1)
            .then_at(SimInstant::from_secs_f64(1.0), 2)
            .then_at(SimInstant::from_secs_f64(2.0), 3);
        assert_eq!(t.at(SimInstant::from_secs_f64(0.999)), 1);
        assert_eq!(t.at(SimInstant::from_secs_f64(1.0)), 2);
        assert_eq!(t.at(SimInstant::from_secs_f64(1.999)), 2);
        assert_eq!(t.at(SimInstant::from_secs_f64(5.0)), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_phases_panic() {
        let _ = Timeline::new(0)
            .then_at(SimInstant::from_secs_f64(2.0), 1)
            .then_at(SimInstant::from_secs_f64(1.0), 2);
    }
}
