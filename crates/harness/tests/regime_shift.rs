//! Integration tests of the adaptive-tuning subsystem under regime shifts
//! (the acceptance gate of the `sle-adaptive` PR): on a network that
//! improves mid-run, adaptive tuning must detect a subsequent leader crash
//! at least as fast as the static configuration while making no more
//! failure-detection mistakes.

use sle_adaptive::TuningPolicy;
use sle_election::ElectorKind;
use sle_harness::RegimeShiftScenario;
use sle_sim::time::SimDuration;

#[test]
fn adaptive_tuning_is_no_worse_than_static_after_a_regime_shift() {
    for algorithm in [ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        let scenario = RegimeShiftScenario::improving_network("regime-shift", algorithm);
        let comparison = scenario.compare();

        let static_outcome = &comparison.static_outcome;
        let adaptive_outcome = &comparison.adaptive_outcome;

        // Both runs must actually exercise the crash-and-recover path.
        assert_eq!(
            static_outcome.metrics.leader_crashes, 1,
            "{algorithm}: static run must crash the leader once"
        );
        assert_eq!(
            adaptive_outcome.metrics.leader_crashes, 1,
            "{algorithm}: adaptive run must crash the leader once"
        );
        assert_eq!(
            static_outcome.metrics.recovery.count, 1,
            "{algorithm}: static run never re-elected"
        );
        assert_eq!(
            adaptive_outcome.metrics.recovery.count, 1,
            "{algorithm}: adaptive run never re-elected"
        );

        // The acceptance criterion: detection+recovery at least as fast, with
        // no more FD mistakes.
        assert!(
            comparison.adaptive_no_worse(),
            "{algorithm}: adaptive (T_r = {:.3}s, mistakes = {}) worse than static \
             (T_r = {:.3}s, mistakes = {})",
            adaptive_outcome.recovery_seconds(),
            adaptive_outcome.metrics.unjustified_demotions,
            static_outcome.recovery_seconds(),
            static_outcome.metrics.unjustified_demotions,
        );

        // And the win must be structural, not luck: after 30 s on a LAN the
        // adaptive tuner must have tightened the worst-case detection bound
        // well below the static T_D^U = 1 s.
        let adaptive_bound = adaptive_outcome
            .detection_bound_towards_leader
            .expect("survivor still monitors the crashed leader");
        let static_bound = static_outcome
            .detection_bound_towards_leader
            .expect("survivor still monitors the crashed leader");
        assert_eq!(
            static_bound,
            scenario.qos.detection_time(),
            "{algorithm}: the static detector must keep η + δ = T_D^U"
        );
        assert!(
            adaptive_bound < static_bound,
            "{algorithm}: adaptive bound {adaptive_bound} not tighter than static {static_bound}"
        );
    }
}

#[test]
fn adaptive_and_static_agree_when_tuning_cannot_help() {
    // Identical scenario, but the leader crash comes during the *degraded*
    // phase, before the improvement: adaptation must still not be worse.
    let mut scenario =
        RegimeShiftScenario::improving_network("early-crash", ElectorKind::OmegaL).with_seed(9);
    scenario.leader_crash_at = sle_sim::time::SimInstant::from_secs_f64(20.0);
    scenario.duration = SimDuration::from_secs(45);
    let comparison = scenario.compare();
    assert_eq!(comparison.static_outcome.metrics.recovery.count, 1);
    assert_eq!(comparison.adaptive_outcome.metrics.recovery.count, 1);
    assert!(
        comparison.adaptive_outcome.metrics.unjustified_demotions
            <= comparison.static_outcome.metrics.unjustified_demotions
    );
}

#[test]
fn static_policy_run_reports_full_detection_bound() {
    let scenario = RegimeShiftScenario::improving_network("static-only", ElectorKind::OmegaLc);
    let outcome = scenario.run(TuningPolicy::Static);
    assert_eq!(
        outcome.detection_bound_towards_leader,
        Some(scenario.qos.detection_time())
    );
    assert_eq!(outcome.metrics.leader_crashes, 1);
}
