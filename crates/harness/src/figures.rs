//! One module per figure of the paper's evaluation (Section 6).
//!
//! Each figure is described as a list of [`Cell`]s: a scenario to run plus
//! the values the paper reports (read from its graphs and text), so the
//! `reproduce` binary can print paper-vs-measured tables side by side.

use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::{LinkCrashSpec, LinkSpec};
use sle_sim::time::SimDuration;

use crate::metrics::ExperimentMetrics;
use crate::scenario::Scenario;

/// The values the paper reports for one experimental cell (approximate when
/// read from a graph; exact when stated in the text).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PaperValues {
    /// Average leader recovery time, seconds.
    pub recovery_secs: Option<f64>,
    /// Average mistake rate, unjustified demotions per hour.
    pub mistakes_per_hour: Option<f64>,
    /// Leader availability (fraction of time).
    pub availability: Option<f64>,
    /// CPU utilisation per workstation, percent.
    pub cpu_percent: Option<f64>,
    /// Network traffic per workstation, KB/s.
    pub kbytes_per_sec: Option<f64>,
}

/// One experimental cell: a label, the scenario to run and the paper's
/// reported values.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Row label, e.g. `"(100ms, 0.1)"`.
    pub label: String,
    /// The scenario to run.
    pub scenario: Scenario,
    /// The values reported by the paper.
    pub paper: PaperValues,
}

/// A fully described figure: identifier, caption and cells.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure identifier, e.g. `"fig3"`.
    pub id: &'static str,
    /// The paper's caption for the figure.
    pub caption: &'static str,
    /// The metrics that matter for this figure.
    pub metrics: &'static [&'static str],
    /// The cells to run.
    pub cells: Vec<Cell>,
}

/// A cell result: the cell description plus the measured metrics.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that was run.
    pub cell: Cell,
    /// The measured metrics.
    pub measured: ExperimentMetrics,
}

/// The five lossy-link settings of Figures 3–5: `(label, D ms, p_L)`.
pub const LOSSY_SETTINGS: [(&str, f64, f64); 5] = [
    ("(0.025ms, 0)", 0.025, 0.0),
    ("(10ms, 0.01)", 10.0, 0.01),
    ("(100ms, 0.01)", 100.0, 0.01),
    ("(10ms, 0.1)", 10.0, 0.1),
    ("(100ms, 0.1)", 100.0, 0.1),
];

fn lossy_cell(
    algorithm: ElectorKind,
    label: &str,
    delay_ms: f64,
    loss: f64,
    duration: SimDuration,
    paper: PaperValues,
) -> Cell {
    let link = LinkSpec::from_paper_tuple(delay_ms, loss);
    let name = format!("{} {}", algorithm.service_name(), label);
    Cell {
        label: format!("{} {}", algorithm.service_name(), label),
        scenario: Scenario::paper_default(name, algorithm, link).with_duration(duration),
        paper,
    }
}

/// Figure 3 — S1 (Ωid) in lossy networks: T_r and λ_u.
pub fn fig3(duration: SimDuration) -> Figure {
    let paper_tr = [0.81, 0.82, 0.87, 0.85, 0.94];
    let cells = LOSSY_SETTINGS
        .iter()
        .zip(paper_tr)
        .map(|(&(label, d, p), tr)| {
            lossy_cell(
                ElectorKind::OmegaId,
                label,
                d,
                p,
                duration,
                PaperValues {
                    recovery_secs: Some(tr),
                    mistakes_per_hour: Some(6.0),
                    ..Default::default()
                },
            )
        })
        .collect();
    Figure {
        id: "fig3",
        caption: "Figure 3: S1 in lossy networks",
        metrics: &["Tr", "mistakes/h"],
        cells,
    }
}

/// Figure 4 — S1 vs S2 in lossy networks: T_r, λ_u and P_leader.
pub fn fig4(duration: SimDuration) -> Figure {
    let s1_tr = [0.81, 0.82, 0.87, 0.85, 0.94];
    let s1_avail = [0.9980, 0.9979, 0.9978, 0.9979, 0.9975];
    let s2_tr = [0.88, 0.90, 0.95, 0.93, 1.00];
    let s2_avail = [0.9985, 0.9985, 0.9984, 0.9984, 0.9982];
    let mut cells = Vec::new();
    for (index, &(label, d, p)) in LOSSY_SETTINGS.iter().enumerate() {
        cells.push(lossy_cell(
            ElectorKind::OmegaId,
            label,
            d,
            p,
            duration,
            PaperValues {
                recovery_secs: Some(s1_tr[index]),
                mistakes_per_hour: Some(6.0),
                availability: Some(s1_avail[index]),
                ..Default::default()
            },
        ));
        cells.push(lossy_cell(
            ElectorKind::OmegaLc,
            label,
            d,
            p,
            duration,
            PaperValues {
                recovery_secs: Some(s2_tr[index]),
                mistakes_per_hour: Some(0.0),
                availability: Some(s2_avail[index]),
                ..Default::default()
            },
        ));
    }
    Figure {
        id: "fig4",
        caption: "Figure 4: S1 and S2 in lossy networks",
        metrics: &["Tr", "mistakes/h", "P_leader"],
        cells,
    }
}

/// Figure 5 — S2 vs S3 in lossy networks: T_r and P_leader (λ_u = 0 for both).
pub fn fig5(duration: SimDuration) -> Figure {
    let s2_tr = [0.88, 0.90, 0.95, 0.93, 1.00];
    let s3_tr = [0.86, 0.89, 0.96, 0.94, 1.02];
    let s2_avail = [0.9985, 0.9985, 0.9984, 0.9984, 0.9982];
    let s3_avail = [0.9986, 0.9985, 0.9984, 0.9984, 0.9982];
    let mut cells = Vec::new();
    for (index, &(label, d, p)) in LOSSY_SETTINGS.iter().enumerate() {
        cells.push(lossy_cell(
            ElectorKind::OmegaLc,
            label,
            d,
            p,
            duration,
            PaperValues {
                recovery_secs: Some(s2_tr[index]),
                mistakes_per_hour: Some(0.0),
                availability: Some(s2_avail[index]),
                ..Default::default()
            },
        ));
        cells.push(lossy_cell(
            ElectorKind::OmegaL,
            label,
            d,
            p,
            duration,
            PaperValues {
                recovery_secs: Some(s3_tr[index]),
                mistakes_per_hour: Some(0.0),
                availability: Some(s3_avail[index]),
                ..Default::default()
            },
        ));
    }
    Figure {
        id: "fig5",
        caption: "Figure 5: S2 and S3 in lossy networks",
        metrics: &["Tr", "P_leader"],
        cells,
    }
}

/// Figure 6 — CPU and bandwidth overhead per workstation for 4/8/12
/// workstations, S2 and S3, on the real LAN and on (100 ms, 0.1) links.
pub fn fig6(duration: SimDuration) -> Figure {
    // (algorithm, network label, delay ms, loss, [cpu% per size], [KB/s per size])
    type Fig6Config = (ElectorKind, &'static str, f64, f64, [f64; 3], [f64; 3]);
    let configs: [Fig6Config; 4] = [
        (
            ElectorKind::OmegaLc,
            "(100ms, 0.1)",
            100.0,
            0.1,
            [0.035, 0.13, 0.30],
            [8.0, 28.0, 62.38],
        ),
        (
            ElectorKind::OmegaL,
            "(100ms, 0.1)",
            100.0,
            0.1,
            [0.012, 0.025, 0.04],
            [2.2, 4.3, 6.48],
        ),
        (
            ElectorKind::OmegaLc,
            "(0.025ms, 0)",
            0.025,
            0.0,
            [0.02, 0.08, 0.17],
            [5.0, 18.0, 40.0],
        ),
        (
            ElectorKind::OmegaL,
            "(0.025ms, 0)",
            0.025,
            0.0,
            [0.005, 0.01, 0.015],
            [1.3, 2.4, 3.5],
        ),
    ];
    let sizes = [4usize, 8, 12];
    let mut cells = Vec::new();
    for (algorithm, label, d, p, cpu, traffic) in configs {
        for (i, &n) in sizes.iter().enumerate() {
            let link = LinkSpec::from_paper_tuple(d, p);
            let name = format!("{} {} n={}", algorithm.service_name(), label, n);
            cells.push(Cell {
                label: name.clone(),
                scenario: Scenario::paper_default(name, algorithm, link)
                    .with_nodes(n)
                    .with_duration(duration),
                paper: PaperValues {
                    cpu_percent: Some(cpu[i]),
                    kbytes_per_sec: Some(traffic[i]),
                    ..Default::default()
                },
            });
        }
    }
    Figure {
        id: "fig6",
        caption: "Figure 6: CPU and bandwidth overhead",
        metrics: &["CPU %/workst.", "KB/s/workst."],
        cells,
    }
}

/// Figure 7 — S2 vs S3 with crash-prone links (mean uptime 600/300/60 s,
/// mean downtime 3 s): T_r, λ_u and P_leader.
pub fn fig7(duration: SimDuration) -> Figure {
    let settings = [
        (600u64, "(600s, 3s)"),
        (300, "(300s, 3s)"),
        (60, "(60s, 3s)"),
    ];
    // Paper values: availability is stated in the text for the extremes,
    // the rest is read from the graphs.
    let s2 = [
        (1.0, 10.0, 0.9983),
        (1.0, 30.0, 0.9980),
        (1.2, 250.0, 0.9878),
    ];
    let s3 = [
        (1.1, 30.0, 0.9975),
        (1.5, 120.0, 0.9766),
        (3.0, 450.0, 0.7742),
    ];
    let mut cells = Vec::new();
    for (index, &(uptime, label)) in settings.iter().enumerate() {
        for (algorithm, values) in [
            (ElectorKind::OmegaLc, s2[index]),
            (ElectorKind::OmegaL, s3[index]),
        ] {
            let name = format!("{} {}", algorithm.service_name(), label);
            cells.push(Cell {
                label: name.clone(),
                scenario: Scenario::paper_default(name, algorithm, LinkSpec::lan())
                    .with_link_crashes(LinkCrashSpec::from_paper_uptime_secs(uptime))
                    .with_duration(duration),
                paper: PaperValues {
                    recovery_secs: Some(values.0),
                    mistakes_per_hour: Some(values.1),
                    availability: Some(values.2),
                    ..Default::default()
                },
            });
        }
    }
    Figure {
        id: "fig7",
        caption: "Figure 7: S2 and S3 with crash-prone links",
        metrics: &["Tr", "mistakes/h", "P_leader"],
        cells,
    }
}

/// Figure 8 — effect of the FD detection bound T_D^U on T_r and P_leader for
/// S2 and S3 (LAN links, workstation crashes every 10 minutes).
pub fn fig8(duration: SimDuration) -> Figure {
    let bounds_ms = [100u64, 250, 500, 750, 1000];
    let s2_tr = [0.09, 0.22, 0.45, 0.67, 0.88];
    let s3_tr = [0.09, 0.22, 0.44, 0.66, 0.86];
    let s2_avail = [0.99985, 0.99962, 0.99925, 0.99888, 0.99850];
    let s3_avail = [0.99985, 0.99963, 0.99926, 0.99890, 0.99855];
    let mut cells = Vec::new();
    for (index, &bound) in bounds_ms.iter().enumerate() {
        let qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(bound));
        for (algorithm, tr, avail) in [
            (ElectorKind::OmegaLc, s2_tr[index], s2_avail[index]),
            (ElectorKind::OmegaL, s3_tr[index], s3_avail[index]),
        ] {
            let name = format!("{} TdU={}ms", algorithm.service_name(), bound);
            cells.push(Cell {
                label: name.clone(),
                scenario: Scenario::paper_default(name, algorithm, LinkSpec::lan())
                    .with_qos(qos)
                    .with_duration(duration),
                paper: PaperValues {
                    recovery_secs: Some(tr),
                    availability: Some(avail),
                    ..Default::default()
                },
            });
        }
    }
    Figure {
        id: "fig8",
        caption: "Figure 8: effect of TdU on the QoS of S2 and S3",
        metrics: &["Tr", "P_leader"],
        cells,
    }
}

/// The headline numbers quoted in the paper's introduction and Section 6.5:
/// availability, CPU and bandwidth of S2 and S3 at 12 workstations in the
/// harshest lossy network.
pub fn headline(duration: SimDuration) -> Figure {
    let mut cells = Vec::new();
    for (algorithm, avail, cpu, traffic) in [
        (ElectorKind::OmegaL, 0.9984, 0.04, 6.48),
        (ElectorKind::OmegaLc, 0.9982, 0.30, 62.38),
    ] {
        let name = format!("{} (100ms, 0.1) n=12", algorithm.service_name());
        cells.push(Cell {
            label: name.clone(),
            scenario: Scenario::paper_default(
                name,
                algorithm,
                LinkSpec::from_paper_tuple(100.0, 0.1),
            )
            .with_duration(duration),
            paper: PaperValues {
                availability: Some(avail),
                cpu_percent: Some(cpu),
                kbytes_per_sec: Some(traffic),
                mistakes_per_hour: Some(0.0),
                ..Default::default()
            },
        });
    }
    Figure {
        id: "headline",
        caption: "Headline numbers (Sections 1 and 6.5)",
        metrics: &["P_leader", "CPU %/workst.", "KB/s/workst.", "mistakes/h"],
        cells,
    }
}

/// Every figure, with the given per-cell measured duration.
pub fn all_figures(duration: SimDuration) -> Vec<Figure> {
    vec![
        fig3(duration),
        fig4(duration),
        fig5(duration),
        fig6(duration.min(SimDuration::from_secs(600))),
        fig7(duration),
        fig8(duration),
        headline(duration),
    ]
}

/// Looks a figure up by identifier (`fig3` … `fig8`, `headline`).
pub fn figure_by_id(id: &str, duration: SimDuration) -> Option<Figure> {
    match id {
        "fig3" => Some(fig3(duration)),
        "fig4" => Some(fig4(duration)),
        "fig5" => Some(fig5(duration)),
        "fig6" => Some(fig6(duration.min(SimDuration::from_secs(600)))),
        "fig7" => Some(fig7(duration)),
        "fig8" => Some(fig8(duration)),
        "headline" => Some(headline(duration)),
        _ => None,
    }
}

impl Figure {
    /// Runs every cell of the figure.
    pub fn run(&self) -> Vec<CellResult> {
        self.cells
            .iter()
            .map(|cell| CellResult {
                cell: cell.clone(),
                measured: cell.scenario.run(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_are_defined_with_cells() {
        let figures = all_figures(SimDuration::from_secs(60));
        assert_eq!(figures.len(), 7);
        for figure in &figures {
            assert!(!figure.cells.is_empty(), "{} has no cells", figure.id);
            assert!(!figure.metrics.is_empty());
        }
        // Expected cell counts per figure.
        assert_eq!(figures[0].cells.len(), 5); // fig3
        assert_eq!(figures[1].cells.len(), 10); // fig4
        assert_eq!(figures[2].cells.len(), 10); // fig5
        assert_eq!(figures[3].cells.len(), 12); // fig6
        assert_eq!(figures[4].cells.len(), 6); // fig7
        assert_eq!(figures[5].cells.len(), 10); // fig8
        assert_eq!(figures[6].cells.len(), 2); // headline
    }

    #[test]
    fn figure_lookup_by_id() {
        assert!(figure_by_id("fig7", SimDuration::from_secs(60)).is_some());
        assert!(figure_by_id("nope", SimDuration::from_secs(60)).is_none());
    }

    #[test]
    fn fig8_varies_the_detection_bound() {
        let figure = fig8(SimDuration::from_secs(60));
        let bounds: Vec<u64> = figure
            .cells
            .iter()
            .map(|c| c.scenario.qos.detection_time().as_millis())
            .collect();
        assert!(bounds.contains(&100));
        assert!(bounds.contains(&1000));
    }

    #[test]
    fn fig6_varies_group_size() {
        let figure = fig6(SimDuration::from_secs(60));
        let sizes: Vec<usize> = figure.cells.iter().map(|c| c.scenario.nodes).collect();
        assert!(sizes.contains(&4));
        assert!(sizes.contains(&8));
        assert!(sizes.contains(&12));
    }
}
