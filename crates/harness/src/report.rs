//! Formatting of paper-vs-measured comparison tables.

use crate::figures::{CellResult, Figure};

fn fmt_opt(value: Option<f64>, precision: usize) -> String {
    match value {
        Some(v) => format!("{v:.precision$}"),
        None => "-".to_string(),
    }
}

/// Renders one figure's results as a fixed-width text table with one row per
/// cell and paper-vs-measured columns for every metric the figure reports.
pub fn render_figure(figure: &Figure, results: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} ==\n", figure.caption));
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>11} {:>11} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
        "cell",
        "Tr paper",
        "Tr meas",
        "mist/h pap",
        "mist/h meas",
        "Pl paper",
        "Pl meas",
        "cpu pap",
        "cpu meas",
        "KB/s pap",
        "KB/s meas",
    ));
    for result in results {
        let paper = result.cell.paper;
        let m = &result.measured;
        let tr_measured = if m.recovery.count > 0 {
            Some(m.recovery.mean)
        } else {
            None
        };
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>11} {:>11.2} {:>10} {:>10.5} {:>9} {:>9.3} {:>9} {:>9.2}\n",
            result.cell.label,
            fmt_opt(paper.recovery_secs, 2),
            fmt_opt(tr_measured, 2),
            fmt_opt(paper.mistakes_per_hour, 1),
            m.mistakes_per_hour,
            fmt_opt(paper.availability, 5),
            m.leader_availability,
            fmt_opt(paper.cpu_percent, 3),
            m.cpu_percent_per_node,
            fmt_opt(paper.kbytes_per_sec, 2),
            m.kbytes_per_sec_per_node,
        ));
    }
    out
}

/// Renders one figure's results as Markdown rows (used to build
/// `EXPERIMENTS.md`).
pub fn render_figure_markdown(figure: &Figure, results: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {}\n\n", figure.caption));
    out.push_str(
        "| cell | Tr paper (s) | Tr measured (s) | λu paper (/h) | λu measured (/h) | P_leader paper | P_leader measured | CPU paper (%) | CPU measured (%) | KB/s paper | KB/s measured | leader crashes |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for result in results {
        let paper = result.cell.paper;
        let m = &result.measured;
        let tr_measured = if m.recovery.count > 0 {
            format!("{:.2} ± {:.2}", m.recovery.mean, m.recovery.ci95)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2} | {} | {:.5} | {} | {:.3} | {} | {:.2} | {} |\n",
            result.cell.label,
            fmt_opt(paper.recovery_secs, 2),
            tr_measured,
            fmt_opt(paper.mistakes_per_hour, 1),
            m.mistakes_per_hour,
            fmt_opt(paper.availability, 5),
            m.leader_availability,
            fmt_opt(paper.cpu_percent, 3),
            m.cpu_percent_per_node,
            fmt_opt(paper.kbytes_per_sec, 2),
            m.kbytes_per_sec_per_node,
            m.leader_crashes,
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig3;
    use crate::metrics::ExperimentMetrics;
    use crate::stats::Summary;
    use sle_sim::time::SimDuration;

    fn fake_metrics() -> ExperimentMetrics {
        ExperimentMetrics {
            duration: SimDuration::from_secs(60),
            recovery: Summary::of(&[0.8, 0.9]),
            mistakes_per_hour: 5.5,
            leader_availability: 0.9981,
            cpu_percent_per_node: 0.12,
            kbytes_per_sec_per_node: 33.0,
            leader_crashes: 2,
            unjustified_demotions: 1,
            recovery_samples: vec![0.8, 0.9],
        }
    }

    #[test]
    fn renders_text_and_markdown() {
        let figure = fig3(SimDuration::from_secs(60));
        let results: Vec<CellResult> = figure
            .cells
            .iter()
            .take(2)
            .map(|cell| CellResult {
                cell: cell.clone(),
                measured: fake_metrics(),
            })
            .collect();
        let text = render_figure(&figure, &results);
        assert!(text.contains("Figure 3"));
        assert!(text.contains("S1 (0.025ms, 0)"));
        assert!(text.contains("0.85"));
        let md = render_figure_markdown(&figure, &results);
        assert!(md.starts_with("### Figure 3"));
        assert!(md.contains("| S1 (0.025ms, 0) |"));
        assert!(md.contains("±"));
    }
}
