//! # sle-harness — the DSN 2008 evaluation, reproduced
//!
//! This crate contains everything needed to regenerate the paper's
//! evaluation (Section 6): the workload (12 workstations crashing every
//! 10 minutes on average over lossy or crash-prone links), the QoS metrics
//! of Section 5 (leader recovery time, mistake rate, leader availability),
//! the CPU/bandwidth cost accounting of Section 6.5, and one scenario set
//! per figure.
//!
//! * [`metrics`] — the metrics collector ([`metrics::MetricsCollector`]),
//! * [`deploy`] — strided multi-group deployment shapes shared by the
//!   scale benches and tests,
//! * [`crash`] — workstation crash/recovery injection,
//! * [`scenario`] — a single experiment cell ([`scenario::Scenario`]),
//! * [`regime`] — the regime-shift experiment comparing static vs adaptive
//!   QoS tuning ([`regime::RegimeShiftScenario`]),
//! * [`figures`] — per-figure cell definitions with the paper's values,
//! * [`report`] — paper-vs-measured table rendering,
//! * [`stats`] — summary statistics (mean, 95% CI).
//!
//! The `reproduce` binary in the `sle-bench` crate drives this crate to
//! regenerate every figure; `EXPERIMENTS.md` records one full run.
//!
//! ## Example: the paper's crash workload, in miniature
//!
//! Section 6 crashes each of 12 workstations on average every 10 minutes
//! and reports means with 95% confidence intervals; [`CrashPlan`] generates
//! that schedule and [`Summary`] does the reporting arithmetic:
//!
//! ```
//! use sle_harness::{CrashPlan, CrashProfile, Summary};
//! use sle_sim::time::SimDuration;
//!
//! let plan = CrashPlan::generate(
//!     12,
//!     SimDuration::from_secs(3600),
//!     CrashProfile::paper_default(),
//!     7,
//! );
//! // ~6 crashes per node-hour at one crash per 10 minutes of uptime.
//! assert!(plan.crash_count() > 12);
//!
//! let summary = Summary::of(&[1.0, 2.0, 3.0]);
//! assert_eq!(summary.mean, 2.0);
//! assert!(summary.ci95 > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crash;
pub mod deploy;
pub mod figures;
pub mod metrics;
pub mod regime;
pub mod report;
pub mod scenario;
pub mod stats;

pub use crash::{CrashEvent, CrashPlan, CrashProfile};
pub use figures::{all_figures, figure_by_id, Cell, CellResult, Figure, PaperValues};
pub use metrics::{CpuModel, ExperimentMetrics, MetricsCollector, NodeCounters};
pub use regime::{RegimeShiftComparison, RegimeShiftOutcome, RegimeShiftScenario};
pub use report::{render_figure, render_figure_markdown};
pub use scenario::{Scenario, EXPERIMENT_GROUP};
pub use stats::Summary;
