//! The leader-election QoS metrics of the paper's Section 5, plus the
//! CPU/bandwidth cost accounting of Section 6.5, implemented as a simulator
//! [`Observer`].
//!
//! * **Average leader recovery time** `T_r` — time from the crash of the
//!   (commonly agreed) leader to the next instant at which all alive group
//!   members agree on an alive leader.
//! * **Average mistake rate** `λ_u` — unjustified demotions per hour: a new
//!   leader becomes commonly agreed while the previous commonly agreed
//!   leader is still alive.
//! * **Leader availability** `P_leader` — fraction of time at which some
//!   alive process is considered leader by every alive group member.
//! * **CPU / bandwidth overhead** — derived from exact per-node message and
//!   byte counts through an explicit cost model (see `DESIGN.md` for the
//!   substitution rationale).
//!
//! A node that has not announced any leader view since it (re)started is
//! treated as still joining and does not take part in the agreement — this
//! matches the paper's measurements, in which the continual crash/recovery
//! churn of *non-leader* workstations affects neither λ_u nor P_leader.

use sle_core::{GroupId, ProcessId, ServiceEvent};
use sle_obs::{Counter, Registry};
use sle_sim::actor::NodeId;
use sle_sim::observer::Observer;
use sle_sim::time::{SimDuration, SimInstant};

use crate::stats::Summary;

/// Cost model converting event counts into CPU utilisation, calibrated so
/// that the 12-workstation S2 run in the harshest lossy network lands near
/// the paper's measured 0.3% of a P4 3.2 GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// CPU time charged per message sent or received.
    pub per_message: SimDuration,
    /// CPU time charged per timer firing.
    pub per_timer: SimDuration,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            per_message: SimDuration::from_micros(10),
            per_timer: SimDuration::from_micros(2),
        }
    }
}

/// A point-in-time copy of one node's traffic and event counters.
///
/// The live cells now reside in an [`sle_obs::Registry`] (under
/// `node.<n>.sim.*`); this struct is the snapshot view the cost model and
/// callers consume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Messages handed to the network by this node.
    pub messages_sent: u64,
    /// Messages delivered to this node.
    pub messages_received: u64,
    /// Payload bytes sent (excluding per-packet overhead).
    pub bytes_sent: u64,
    /// Payload bytes received (excluding per-packet overhead).
    pub bytes_received: u64,
    /// Timer firings handled by this node.
    pub timers: u64,
}

/// The registry-backed live cells behind one node's [`NodeCounters`] view.
#[derive(Debug)]
struct NodeHandles {
    messages_sent: Counter,
    messages_received: Counter,
    bytes_sent: Counter,
    bytes_received: Counter,
    timers: Counter,
}

impl NodeHandles {
    fn new(registry: &Registry, node: usize) -> Self {
        let name = |suffix: &str| format!("node.{node}.sim.{suffix}");
        NodeHandles {
            messages_sent: registry.counter(&name("messages_sent")),
            messages_received: registry.counter(&name("messages_received")),
            bytes_sent: registry.counter(&name("bytes_sent")),
            bytes_received: registry.counter(&name("bytes_received")),
            timers: registry.counter(&name("timers")),
        }
    }

    fn snapshot(&self) -> NodeCounters {
        NodeCounters {
            messages_sent: self.messages_sent.get(),
            messages_received: self.messages_received.get(),
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            timers: self.timers.get(),
        }
    }
}

/// The observer that computes every metric of the evaluation while an
/// experiment runs.
#[derive(Debug)]
pub struct MetricsCollector {
    group: GroupId,
    /// Per-packet framing overhead added to every message (Ethernet + IP +
    /// UDP headers), as a real deployment would pay on the wire.
    overhead_bytes: usize,
    cpu: CpuModel,
    /// Metrics are only accumulated after this instant (warm-up exclusion).
    measure_from: SimInstant,

    registry: Registry,
    counters: Vec<NodeHandles>,
    node_up: Vec<bool>,
    views: Vec<Option<ProcessId>>,

    /// `Some(instant)` while a commonly agreed alive leader exists.
    agreement_since: Option<SimInstant>,
    /// The leader of the current agreement, if any.
    current_agreement: Option<ProcessId>,
    /// The leader of the most recent agreement (kept across gaps).
    last_agreed_leader: Option<ProcessId>,
    /// Whether the last agreed leader was still alive when agreement ended.
    last_leader_alive_at_loss: bool,
    agreed_time: SimDuration,
    measured_since: SimInstant,

    recovery_started: Option<SimInstant>,
    recovery_samples: Vec<f64>,
    unjustified_demotions: u64,
    leader_crashes: u64,
}

impl MetricsCollector {
    /// Creates a collector for `group` over `nodes` workstations; metrics are
    /// accumulated starting at `measure_from`. The per-node counters live in
    /// a fresh private [`Registry`]; use
    /// [`MetricsCollector::with_registry`] to share one with other layers.
    pub fn new(group: GroupId, nodes: usize, measure_from: SimInstant) -> Self {
        Self::with_registry(group, nodes, measure_from, &Registry::default())
    }

    /// Like [`MetricsCollector::new`], but registering the per-node counters
    /// (`node.<n>.sim.*`) in `registry` so an exporter sees them alongside
    /// the protocol-level metrics.
    pub fn with_registry(
        group: GroupId,
        nodes: usize,
        measure_from: SimInstant,
        registry: &Registry,
    ) -> Self {
        MetricsCollector {
            group,
            overhead_bytes: 54,
            cpu: CpuModel::default(),
            measure_from,
            registry: registry.clone(),
            counters: (0..nodes).map(|n| NodeHandles::new(registry, n)).collect(),
            node_up: vec![true; nodes],
            views: vec![None; nodes],
            agreement_since: None,
            current_agreement: None,
            last_agreed_leader: None,
            last_leader_alive_at_loss: false,
            agreed_time: SimDuration::ZERO,
            measured_since: measure_from,
            recovery_started: None,
            recovery_samples: Vec::new(),
            unjustified_demotions: 0,
            leader_crashes: 0,
        }
    }

    /// Overrides the per-packet framing overhead (default 54 bytes).
    pub fn with_overhead(mut self, overhead_bytes: usize) -> Self {
        self.overhead_bytes = overhead_bytes;
        self
    }

    /// Overrides the CPU cost model.
    pub fn with_cpu_model(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// The registry holding the live per-node counters.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time copy of one node's counters, if `node` is in range.
    pub fn node_counters(&self, node: NodeId) -> Option<NodeCounters> {
        self.counters.get(node.index()).map(NodeHandles::snapshot)
    }

    fn in_measurement(&self, now: SimInstant) -> bool {
        now >= self.measure_from
    }

    /// The group currently has a commonly agreed, alive leader iff every
    /// alive node *that has announced a view* reports the same leader, at
    /// least one such node exists, and the leader's own node is alive.
    fn compute_agreement(&self) -> Option<ProcessId> {
        let mut agreed: Option<ProcessId> = None;
        let mut participants = 0usize;
        for (index, up) in self.node_up.iter().enumerate() {
            if !up {
                continue;
            }
            let Some(view) = self.views[index] else {
                continue; // still (re)joining: not a participant yet
            };
            participants += 1;
            match agreed {
                None => agreed = Some(view),
                Some(current) if current == view => {}
                _ => return None,
            }
        }
        if participants == 0 {
            return None;
        }
        let leader = agreed?;
        if self
            .node_up
            .get(leader.node.index())
            .copied()
            .unwrap_or(false)
        {
            Some(leader)
        } else {
            None
        }
    }

    /// Re-evaluates the agreement state after any change, accumulating the
    /// time spent in the previous state and recording T_r samples and
    /// unjustified demotions.
    fn refresh(&mut self, now: SimInstant) {
        // Close the interval spent in the previous state.
        if let Some(since) = self.agreement_since {
            let from = since.max(self.measure_from);
            if now > from {
                self.agreed_time += now - from;
            }
        }

        let new_agreement = self.compute_agreement();
        if new_agreement == self.current_agreement {
            // Only the clock moved; restart the accumulation interval.
            if self.current_agreement.is_some() {
                self.agreement_since = Some(now);
            }
            return;
        }

        match (self.current_agreement, new_agreement) {
            (Some(old), None) => {
                self.last_leader_alive_at_loss =
                    self.node_up.get(old.node.index()).copied().unwrap_or(false);
                self.agreement_since = None;
            }
            (old_opt, Some(new)) => {
                // A (new) agreement formed.
                let previous = old_opt.or(self.last_agreed_leader);
                if let Some(previous) = previous {
                    if previous != new {
                        let previous_alive = match old_opt {
                            Some(old) => {
                                self.node_up.get(old.node.index()).copied().unwrap_or(false)
                            }
                            None => self.last_leader_alive_at_loss,
                        };
                        if previous_alive && self.in_measurement(now) {
                            self.unjustified_demotions += 1;
                        }
                    }
                }
                if let Some(started) = self.recovery_started.take() {
                    if self.in_measurement(now) {
                        self.recovery_samples
                            .push(now.saturating_since(started).as_secs_f64());
                    }
                }
                self.last_agreed_leader = Some(new);
                self.agreement_since = Some(now);
            }
            (None, None) => {
                self.agreement_since = None;
            }
        }
        self.current_agreement = new_agreement;
    }

    /// Produces the experiment report for an experiment that ended at `end`.
    pub fn finish(mut self, end: SimInstant) -> ExperimentMetrics {
        self.refresh(end);
        // `refresh` with an unchanged state restarted the interval at `end`,
        // so the accumulated time is complete.
        let elapsed = end.saturating_since(self.measured_since);
        let elapsed_secs = elapsed.as_secs_f64().max(1e-9);
        let elapsed_hours = elapsed_secs / 3600.0;

        let nodes = self.counters.len().max(1) as f64;
        let mut total_bytes = 0.0;
        let mut total_cpu = SimDuration::ZERO;
        for handles in &self.counters {
            let counter = handles.snapshot();
            let packets = counter.messages_sent + counter.messages_received;
            total_bytes += (counter.bytes_sent + counter.bytes_received) as f64
                + (packets as usize * self.overhead_bytes) as f64;
            total_cpu =
                total_cpu + self.cpu.per_message * packets + self.cpu.per_timer * counter.timers;
        }

        ExperimentMetrics {
            duration: elapsed,
            recovery: Summary::of(&self.recovery_samples),
            mistakes_per_hour: self.unjustified_demotions as f64 / elapsed_hours,
            leader_availability: (self.agreed_time.as_secs_f64() / elapsed_secs).min(1.0),
            cpu_percent_per_node: total_cpu.as_secs_f64() / nodes / elapsed_secs * 100.0,
            kbytes_per_sec_per_node: total_bytes / nodes / elapsed_secs / 1024.0,
            leader_crashes: self.leader_crashes,
            unjustified_demotions: self.unjustified_demotions,
            recovery_samples: self.recovery_samples,
        }
    }
}

impl Observer<ServiceEvent> for MetricsCollector {
    fn message_sent(&mut self, now: SimInstant, from: NodeId, _to: NodeId, bytes: usize) {
        if self.in_measurement(now) {
            if let Some(counter) = self.counters.get(from.index()) {
                counter.messages_sent.inc();
                counter.bytes_sent.add(bytes as u64);
            }
        }
    }

    fn message_delivered(&mut self, now: SimInstant, _from: NodeId, to: NodeId, bytes: usize) {
        if self.in_measurement(now) {
            if let Some(counter) = self.counters.get(to.index()) {
                counter.messages_received.inc();
                counter.bytes_received.add(bytes as u64);
            }
        }
    }

    fn timer_fired(&mut self, now: SimInstant, node: NodeId) {
        if self.in_measurement(now) {
            if let Some(counter) = self.counters.get(node.index()) {
                counter.timers.inc();
            }
        }
    }

    fn node_crashed(&mut self, now: SimInstant, node: NodeId) {
        if let Some(up) = self.node_up.get_mut(node.index()) {
            *up = false;
        }
        if let Some(view) = self.views.get_mut(node.index()) {
            *view = None;
        }
        // If the commonly agreed leader just crashed, start the recovery
        // clock (T_r measures from the crash, not from its detection).
        if let Some(leader) = self.current_agreement {
            if leader.node == node {
                if self.in_measurement(now) {
                    self.leader_crashes += 1;
                }
                self.recovery_started = Some(now);
            }
        }
        self.refresh(now);
    }

    fn node_recovered(&mut self, now: SimInstant, node: NodeId, _incarnation: u64) {
        if let Some(up) = self.node_up.get_mut(node.index()) {
            *up = true;
        }
        if let Some(view) = self.views.get_mut(node.index()) {
            *view = None;
        }
        self.refresh(now);
    }

    fn event_emitted(&mut self, now: SimInstant, node: NodeId, event: &ServiceEvent) {
        let ServiceEvent::LeaderChanged { group, leader } = event;
        if *group != self.group {
            return;
        }
        if let Some(view) = self.views.get_mut(node.index()) {
            *view = *leader;
        }
        self.refresh(now);
    }
}

/// The metrics produced by one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentMetrics {
    /// Measured (post warm-up) duration.
    pub duration: SimDuration,
    /// Leader recovery time statistics (seconds).
    pub recovery: Summary,
    /// Unjustified demotions per hour (λ_u).
    pub mistakes_per_hour: f64,
    /// Fraction of time with a commonly agreed alive leader (P_leader).
    pub leader_availability: f64,
    /// Average CPU utilisation per workstation, in percent.
    pub cpu_percent_per_node: f64,
    /// Average network traffic per workstation (sent + received), in KB/s.
    pub kbytes_per_sec_per_node: f64,
    /// Number of crashes of the commonly agreed leader observed.
    pub leader_crashes: u64,
    /// Total unjustified demotions observed.
    pub unjustified_demotions: u64,
    /// Raw leader-recovery samples (seconds).
    pub recovery_samples: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const GROUP: GroupId = GroupId(1);

    fn leader(node: u32) -> ProcessId {
        ProcessId::new(NodeId(node), 0)
    }

    fn set_view(
        collector: &mut MetricsCollector,
        node: u32,
        view: Option<ProcessId>,
        at_secs: f64,
    ) {
        let event = ServiceEvent::LeaderChanged {
            group: GROUP,
            leader: view,
        };
        collector.event_emitted(SimInstant::from_secs_f64(at_secs), NodeId(node), &event);
    }

    #[test]
    fn availability_requires_all_announced_views_to_agree() {
        let mut collector = MetricsCollector::new(GROUP, 2, SimInstant::ZERO);
        // The two nodes disagree until t=4: no commonly agreed leader.
        set_view(&mut collector, 0, Some(leader(0)), 0.0);
        set_view(&mut collector, 1, Some(leader(1)), 0.0);
        set_view(&mut collector, 1, Some(leader(0)), 4.0);
        let metrics = collector.finish(SimInstant::from_secs_f64(10.0));
        assert!((metrics.leader_availability - 0.6).abs() < 1e-9);
        assert_eq!(metrics.recovery.count, 0);
    }

    #[test]
    fn a_joining_node_without_a_view_does_not_break_agreement() {
        let mut collector = MetricsCollector::new(GROUP, 3, SimInstant::ZERO);
        set_view(&mut collector, 0, Some(leader(0)), 0.0);
        set_view(&mut collector, 1, Some(leader(0)), 0.0);
        // Node 2 never announces anything: it is treated as still joining.
        let metrics = collector.finish(SimInstant::from_secs_f64(10.0));
        assert!((metrics.leader_availability - 1.0).abs() < 1e-9);
        assert_eq!(metrics.unjustified_demotions, 0);
    }

    #[test]
    fn leader_crash_produces_a_recovery_sample_and_no_mistake() {
        let mut collector = MetricsCollector::new(GROUP, 2, SimInstant::ZERO);
        set_view(&mut collector, 0, Some(leader(0)), 0.0);
        set_view(&mut collector, 1, Some(leader(0)), 0.0);
        collector.node_crashed(SimInstant::from_secs_f64(5.0), NodeId(0));
        // Agreement on the new leader is reached at t=6.2s.
        set_view(&mut collector, 1, Some(leader(1)), 6.2);
        let metrics = collector.finish(SimInstant::from_secs_f64(10.0));
        assert_eq!(metrics.recovery.count, 1);
        assert!((metrics.recovery.mean - 1.2).abs() < 1e-9);
        assert_eq!(metrics.leader_crashes, 1);
        // A justified demotion: not a mistake.
        assert_eq!(metrics.unjustified_demotions, 0);
        // Availability: agreed during [0,5) and [6.2,10) = 8.8 of 10 seconds.
        assert!((metrics.leader_availability - 0.88).abs() < 1e-9);
    }

    #[test]
    fn demoting_an_alive_leader_counts_as_one_mistake() {
        let mut collector = MetricsCollector::new(GROUP, 2, SimInstant::ZERO);
        set_view(&mut collector, 0, Some(leader(1)), 0.0);
        set_view(&mut collector, 1, Some(leader(1)), 0.0);
        // Both switch to node 0 while node 1 is still alive (going through a
        // brief disagreement, as in a real run).
        set_view(&mut collector, 0, Some(leader(0)), 5.0);
        set_view(&mut collector, 1, Some(leader(0)), 5.5);
        let metrics = collector.finish(SimInstant::from_secs_f64(3600.0));
        assert_eq!(metrics.unjustified_demotions, 1);
        assert!((metrics.mistakes_per_hour - 1.0).abs() < 1e-6);
    }

    #[test]
    fn recovery_churn_of_followers_is_not_a_mistake() {
        let mut collector = MetricsCollector::new(GROUP, 3, SimInstant::ZERO);
        for node in 0..3 {
            set_view(&mut collector, node, Some(leader(0)), 0.0);
        }
        // A follower crashes and recovers; after recovery it first has no
        // view, then re-learns the same leader. No mistake, no gap.
        collector.node_crashed(SimInstant::from_secs_f64(10.0), NodeId(2));
        collector.node_recovered(SimInstant::from_secs_f64(15.0), NodeId(2), 1);
        set_view(&mut collector, 2, Some(leader(0)), 15.4);
        let metrics = collector.finish(SimInstant::from_secs_f64(20.0));
        assert_eq!(metrics.unjustified_demotions, 0);
        assert!((metrics.leader_availability - 1.0).abs() < 1e-9);
        assert_eq!(metrics.recovery.count, 0);
    }

    #[test]
    fn warmup_period_is_excluded() {
        let measure_from = SimInstant::from_secs_f64(100.0);
        let mut collector = MetricsCollector::new(GROUP, 2, measure_from);
        set_view(&mut collector, 0, Some(leader(0)), 0.0);
        set_view(&mut collector, 1, Some(leader(0)), 0.0);
        // A demotion during warm-up is not counted.
        set_view(&mut collector, 0, Some(leader(1)), 50.0);
        set_view(&mut collector, 1, Some(leader(1)), 50.0);
        let metrics = collector.finish(SimInstant::from_secs_f64(200.0));
        assert_eq!(metrics.unjustified_demotions, 0);
        // Agreed the whole measured window.
        assert!((metrics.leader_availability - 1.0).abs() < 1e-9);
        assert_eq!(metrics.duration, SimDuration::from_secs(100));
    }

    #[test]
    fn traffic_and_cpu_accounting() {
        let mut collector = MetricsCollector::new(GROUP, 2, SimInstant::ZERO)
            .with_overhead(46)
            .with_cpu_model(CpuModel {
                per_message: SimDuration::from_micros(100),
                per_timer: SimDuration::ZERO,
            });
        let t = SimInstant::from_secs_f64(1.0);
        // 10 messages of 100 bytes from node 0 to node 1.
        for _ in 0..10 {
            collector.message_sent(t, NodeId(0), NodeId(1), 100);
            collector.message_delivered(t, NodeId(0), NodeId(1), 100);
            collector.timer_fired(t, NodeId(0));
        }
        let metrics = collector.finish(SimInstant::from_secs_f64(10.0));
        // Total bytes: 10*(100+46) sent + same received = 2920 over 2 nodes
        // over 10 s => 146 B/s per node.
        assert!((metrics.kbytes_per_sec_per_node - 146.0 / 1024.0).abs() < 1e-6);
        // CPU: 20 message-handlings * 100 us = 2 ms over 2 nodes over 10 s.
        assert!((metrics.cpu_percent_per_node - 0.01).abs() < 1e-9);
    }

    #[test]
    fn dead_leader_view_is_not_an_agreement() {
        let mut collector = MetricsCollector::new(GROUP, 2, SimInstant::ZERO);
        set_view(&mut collector, 0, Some(leader(0)), 0.0);
        set_view(&mut collector, 1, Some(leader(0)), 0.0);
        collector.node_crashed(SimInstant::from_secs_f64(2.0), NodeId(0));
        // Node 1 still believes node 0 leads, but node 0 is dead: no leader.
        let metrics = collector.finish(SimInstant::from_secs_f64(4.0));
        assert!((metrics.leader_availability - 0.5).abs() < 1e-9);
    }
}
