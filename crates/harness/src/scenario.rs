//! Experiment scenarios: everything needed to run one cell of one figure of
//! the paper's evaluation and obtain its metrics.

use sle_core::{GroupId, JoinConfig, ServiceConfig, ServiceNode};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::{LinkCrashSpec, LinkSpec};
use sle_net::network::NetworkModel;
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::world::World;

use crate::crash::{CrashPlan, CrashProfile};
use crate::metrics::{ExperimentMetrics, MetricsCollector};

/// The group used by all experiments.
pub const EXPERIMENT_GROUP: GroupId = GroupId(1);

/// A complete experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (used in reports).
    pub name: String,
    /// The service version under test (S1 = Ωid, S2 = Ωlc, S3 = Ωl).
    pub algorithm: ElectorKind,
    /// Number of workstations (and of candidate application processes).
    pub nodes: usize,
    /// Behaviour of every directed link.
    pub link: LinkSpec,
    /// Optional link-crash overlay (Figure 7).
    pub link_crashes: Option<LinkCrashSpec>,
    /// Workstation crash/recovery behaviour (None disables crashes).
    pub workstation_crashes: Option<CrashProfile>,
    /// QoS of the underlying failure detector.
    pub qos: QosSpec,
    /// Measured experiment duration (after the warm-up).
    pub duration: SimDuration,
    /// Warm-up excluded from all metrics.
    pub warmup: SimDuration,
    /// Experiment seed (controls everything stochastic).
    pub seed: u64,
}

impl Scenario {
    /// A scenario with the paper's default workload: 12 workstations, each
    /// crashing every 10 minutes on average, FD QoS (1 s, 100 days,
    /// 0.99999988), over the given lossy link behaviour.
    pub fn paper_default(name: impl Into<String>, algorithm: ElectorKind, link: LinkSpec) -> Self {
        Scenario {
            name: name.into(),
            algorithm,
            nodes: 12,
            link,
            link_crashes: None,
            workstation_crashes: Some(CrashProfile::paper_default()),
            qos: QosSpec::paper_default(),
            duration: SimDuration::from_secs(3600),
            warmup: SimDuration::from_secs(30),
            seed: 0xD5E2_2008,
        }
    }

    /// Overrides the number of workstations.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Overrides the measured duration.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a link-crash overlay.
    pub fn with_link_crashes(mut self, spec: LinkCrashSpec) -> Self {
        self.link_crashes = Some(spec);
        self
    }

    /// Disables workstation crashes.
    pub fn without_workstation_crashes(mut self) -> Self {
        self.workstation_crashes = None;
        self
    }

    /// Overrides the failure-detector QoS.
    pub fn with_qos(mut self, qos: QosSpec) -> Self {
        self.qos = qos;
        self
    }

    /// Runs the scenario to completion and returns its metrics.
    pub fn run(&self) -> ExperimentMetrics {
        let n = self.nodes;
        let algorithm = self.algorithm;
        let qos = self.qos;
        let mut network = NetworkModel::new(self.link);
        if let Some(spec) = self.link_crashes {
            network = network.with_link_crashes(spec);
        }
        let medium = network.build(self.seed.wrapping_add(1));

        let mut world: World<ServiceNode, _> = World::new(
            n,
            Box::new(move |node, _incarnation| {
                let config = ServiceConfig::full_mesh(node, n, algorithm)
                    .with_auto_join(EXPERIMENT_GROUP, JoinConfig::candidate().with_qos(qos));
                ServiceNode::new(config)
            }),
            medium,
            self.seed,
        );

        let total = self.warmup + self.duration;
        if let Some(profile) = self.workstation_crashes {
            let plan = CrashPlan::generate(n, total, profile, self.seed.wrapping_add(2));
            plan.install(&mut world);
        }

        let measure_from = SimInstant::ZERO + self.warmup;
        let mut collector = MetricsCollector::new(EXPERIMENT_GROUP, n, measure_from);
        world.run_until(SimInstant::ZERO + total, &mut collector);
        collector.finish(SimInstant::ZERO + total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small smoke test of the full experiment pipeline: a quiet network
    /// with no crashes must give perfect availability and no mistakes.
    #[test]
    fn quiet_network_has_a_stable_leader() {
        let metrics = Scenario::paper_default("smoke", ElectorKind::OmegaLc, LinkSpec::lan())
            .with_nodes(4)
            .without_workstation_crashes()
            .with_duration(SimDuration::from_secs(120))
            .run();
        assert_eq!(metrics.unjustified_demotions, 0);
        assert!(
            metrics.leader_availability > 0.999,
            "availability {}",
            metrics.leader_availability
        );
        assert!(metrics.kbytes_per_sec_per_node > 0.0);
        assert!(metrics.cpu_percent_per_node > 0.0);
        assert_eq!(metrics.leader_crashes, 0);
    }

    /// Crashing workstations produce leader crashes, recoveries within a few
    /// seconds, and (for the stable algorithms) no unjustified demotions.
    #[test]
    fn crashing_workstations_are_recovered_from() {
        let metrics = Scenario::paper_default("crashes", ElectorKind::OmegaL, LinkSpec::lan())
            .with_nodes(6)
            .with_duration(SimDuration::from_secs(1800))
            .with_seed(77)
            .run();
        assert!(
            metrics.leader_crashes > 0,
            "expected at least one leader crash"
        );
        assert!(metrics.recovery.count > 0);
        assert!(
            metrics.recovery.mean < 3.0,
            "recovery too slow: {}s",
            metrics.recovery.mean
        );
        assert!(metrics.leader_availability > 0.95);
    }

    #[test]
    fn builders_compose() {
        let scenario = Scenario::paper_default("x", ElectorKind::OmegaId, LinkSpec::perfect())
            .with_nodes(5)
            .with_seed(3)
            .with_duration(SimDuration::from_secs(10))
            .with_link_crashes(LinkCrashSpec::from_paper_uptime_secs(60))
            .with_qos(QosSpec::paper_default_with_detection(
                SimDuration::from_millis(500),
            ))
            .without_workstation_crashes();
        assert_eq!(scenario.nodes, 5);
        assert_eq!(scenario.seed, 3);
        assert!(scenario.link_crashes.is_some());
        assert!(scenario.workstation_crashes.is_none());
        assert_eq!(scenario.qos.detection_time(), SimDuration::from_millis(500));
    }
}
