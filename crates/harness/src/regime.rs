//! The regime-shift experiment: static vs adaptive QoS tuning on a network
//! whose behaviour changes mid-run.
//!
//! The network starts in a degraded regime (WAN-ish delays, some loss),
//! then improves sharply — the kind of drift the paper's static per-join
//! configuration cannot exploit: its failure detector keeps the full
//! `T_D^U` worst-case detection time forever. The adaptive tuner measures
//! the improvement and tightens η + δ, so when the leader is crashed *after*
//! the shift the group recovers faster — without additional false
//! suspicions, since the derived parameters honour the same
//! mistake-recurrence bound.

use sle_adaptive::TuningPolicy;
use sle_core::{JoinConfig, ProcessId, ServiceConfig, ServiceNode};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::drift::{DriftSchedule, DriftingNetwork};
use sle_net::link::LinkSpec;
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::world::World;

use crate::metrics::{ExperimentMetrics, MetricsCollector};
use crate::scenario::EXPERIMENT_GROUP;

/// A regime-shift experiment: the same run executed once with static and
/// once with adaptive tuning, everything else (seed, schedule, crash time)
/// identical.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeShiftScenario {
    /// Human-readable name (used in reports).
    pub name: String,
    /// The service version under test.
    pub algorithm: ElectorKind,
    /// Number of workstations.
    pub nodes: usize,
    /// The drifting behaviour of every directed link.
    pub schedule: DriftSchedule,
    /// The application-level failure-detection QoS.
    pub qos: QosSpec,
    /// When the commonly agreed leader is crashed (chosen after the last
    /// regime shift, so adaptation has had time to converge).
    pub leader_crash_at: SimInstant,
    /// Total virtual duration of the run.
    pub duration: SimDuration,
    /// Experiment seed.
    pub seed: u64,
}

impl RegimeShiftScenario {
    /// The default regime shift: 6 workstations on a congested network
    /// (40 ms exponential delays, 2% loss) that clears up to the paper's LAN
    /// at t = 30 s; the leader crashes at t = 60 s.
    pub fn improving_network(name: impl Into<String>, algorithm: ElectorKind) -> Self {
        RegimeShiftScenario {
            name: name.into(),
            algorithm,
            nodes: 6,
            schedule: DriftSchedule::new(LinkSpec::from_paper_tuple(40.0, 0.02))
                .then_at(SimInstant::from_secs_f64(30.0), LinkSpec::lan()),
            qos: QosSpec::paper_default(),
            leader_crash_at: SimInstant::from_secs_f64(60.0),
            duration: SimDuration::from_secs(90),
            seed: 0xAD_2026,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the scenario under the given tuning policy.
    pub fn run(&self, tuning: TuningPolicy) -> RegimeShiftOutcome {
        let n = self.nodes;
        let algorithm = self.algorithm;
        let qos = self.qos;
        let medium = self.schedule.clone().build();
        let mut world: World<ServiceNode, DriftingNetwork> = World::new(
            n,
            Box::new(move |node, _incarnation| {
                let join = JoinConfig::candidate().with_qos(qos).with_tuning(tuning);
                let config = ServiceConfig::full_mesh(node, n, algorithm)
                    .with_auto_join(EXPERIMENT_GROUP, join);
                ServiceNode::new(config)
            }),
            medium,
            self.seed,
        );

        let mut collector = MetricsCollector::new(EXPERIMENT_GROUP, n, SimInstant::ZERO);
        world.run_until(self.leader_crash_at, &mut collector);
        let leader = agreed_leader(&world)
            .expect("the group must have agreed on a leader before the scheduled crash");

        // The worst-case detection bound a surviving node holds towards the
        // leader at this point shows how far tuning has converged (sampled
        // now — once the leader crashes its monitor is eventually dropped
        // from the survivor's membership).
        let observer_node = NodeId(if leader.node == NodeId(0) { 1 } else { 0 });
        let detection_bound = world.actor(observer_node).and_then(|node| {
            node.fd_params_of(EXPERIMENT_GROUP, leader.node)
                .map(|params| params.worst_case_detection())
        });

        let crash_at = world.now() + SimDuration::from_millis(1);
        world.schedule_crash(leader.node, crash_at);
        world.run_until(SimInstant::ZERO + self.duration, &mut collector);

        RegimeShiftOutcome {
            metrics: collector.finish(SimInstant::ZERO + self.duration),
            crashed_leader: leader,
            detection_bound_towards_leader: detection_bound,
        }
    }

    /// Runs the scenario once statically and once adaptively.
    pub fn compare(&self) -> RegimeShiftComparison {
        RegimeShiftComparison {
            static_outcome: self.run(TuningPolicy::Static),
            adaptive_outcome: self.run(TuningPolicy::adaptive()),
        }
    }
}

fn agreed_leader(world: &World<ServiceNode, DriftingNetwork>) -> Option<ProcessId> {
    let mut leader = None;
    for i in 0..world.num_nodes() {
        let node = NodeId(i as u32);
        if !world.is_up(node) {
            continue;
        }
        let view = world.actor(node)?.leader_of(EXPERIMENT_GROUP)?;
        match leader {
            None => leader = Some(view),
            Some(l) if l == view => {}
            _ => return None,
        }
    }
    leader
}

/// The result of one regime-shift run.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeShiftOutcome {
    /// Full QoS metrics of the run (the single recovery sample is the
    /// detection + re-election time of the scheduled leader crash).
    pub metrics: ExperimentMetrics,
    /// The leader that was crashed.
    pub crashed_leader: ProcessId,
    /// The worst-case detection bound (η + δ) a survivor held towards the
    /// leader just before the scheduled crash.
    pub detection_bound_towards_leader: Option<SimDuration>,
}

impl RegimeShiftOutcome {
    /// The measured leader-detection-plus-recovery time, in seconds
    /// (`f64::INFINITY` if the group never re-elected).
    pub fn recovery_seconds(&self) -> f64 {
        if self.metrics.recovery.count == 0 {
            f64::INFINITY
        } else {
            self.metrics.recovery.mean
        }
    }
}

/// Static vs adaptive outcomes of the same regime-shift scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeShiftComparison {
    /// The run with the paper's static per-join configuration.
    pub static_outcome: RegimeShiftOutcome,
    /// The run with the adaptive tuner enabled.
    pub adaptive_outcome: RegimeShiftOutcome,
}

impl RegimeShiftComparison {
    /// True iff the adaptive run detected and recovered from the leader
    /// crash at least as fast as the static run, while making no more
    /// mistakes (unjustified demotions).
    pub fn adaptive_no_worse(&self) -> bool {
        self.adaptive_outcome.recovery_seconds() <= self.static_outcome.recovery_seconds()
            && self.adaptive_outcome.metrics.unjustified_demotions
                <= self.static_outcome.metrics.unjustified_demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builders() {
        let scenario =
            RegimeShiftScenario::improving_network("x", ElectorKind::OmegaL).with_seed(7);
        assert_eq!(scenario.seed, 7);
        assert_eq!(scenario.nodes, 6);
        assert_eq!(scenario.schedule.phases().len(), 2);
        assert!(scenario.leader_crash_at > scenario.schedule.phases()[1].0);
    }
}
