//! Workstation crash/recovery injection.
//!
//! The paper's experiments crash every workstation at exponentially
//! distributed intervals (mean 600 s) and bring it back after an
//! exponentially distributed recovery time (mean 5 s); the crash kills the
//! service instance and the application process on that workstation
//! (Section 6.1). [`CrashPlan`] pre-computes such a schedule deterministically
//! from a seed and installs it into a simulator [`World`].

use sle_sim::actor::{Actor, NodeId};
use sle_sim::medium::Medium;
use sle_sim::rng::SimRng;
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::world::World;

/// Parameters of the workstation crash/recovery process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashProfile {
    /// Mean time between two consecutive crashes of the same workstation.
    pub mean_uptime: SimDuration,
    /// Mean time a crashed workstation takes to recover.
    pub mean_downtime: SimDuration,
}

impl CrashProfile {
    /// The paper's profile: a crash every 10 minutes, 5 seconds to recover.
    pub fn paper_default() -> Self {
        CrashProfile {
            mean_uptime: SimDuration::from_secs(600),
            mean_downtime: SimDuration::from_secs(5),
        }
    }
}

/// A single scheduled crash or recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The affected workstation.
    pub node: NodeId,
    /// When the event happens.
    pub at: SimInstant,
    /// `true` for a crash, `false` for a recovery.
    pub is_crash: bool,
}

/// A deterministic schedule of crashes and recoveries for a set of
/// workstations.
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    events: Vec<CrashEvent>,
}

impl CrashPlan {
    /// A plan with no crashes at all.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Generates a plan for `nodes` workstations over `duration`, following
    /// `profile`, deterministically from `seed`.
    pub fn generate(nodes: usize, duration: SimDuration, profile: CrashProfile, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let mut events = Vec::new();
        let horizon = SimInstant::ZERO + duration;
        for node in 0..nodes {
            let mut node_rng = rng.fork(node as u64);
            let mut at = SimInstant::ZERO + node_rng.exponential(profile.mean_uptime);
            while at < horizon {
                events.push(CrashEvent {
                    node: NodeId(node as u32),
                    at,
                    is_crash: true,
                });
                at += node_rng.exponential(profile.mean_downtime);
                if at >= horizon {
                    break;
                }
                events.push(CrashEvent {
                    node: NodeId(node as u32),
                    at,
                    is_crash: false,
                });
                at += node_rng.exponential(profile.mean_uptime);
            }
        }
        events.sort_by_key(|e| e.at);
        CrashPlan { events }
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }

    /// Number of crashes in the plan.
    pub fn crash_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_crash).count()
    }

    /// Installs the plan into a simulator world.
    pub fn install<A: Actor, M: Medium>(&self, world: &mut World<A, M>) {
        for event in &self.events {
            if event.is_crash {
                world.schedule_crash(event.node, event.at);
            } else {
                world.schedule_recovery(event.node, event.at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_ordered() {
        let profile = CrashProfile::paper_default();
        let a = CrashPlan::generate(12, SimDuration::from_secs(3600), profile, 9);
        let b = CrashPlan::generate(12, SimDuration::from_secs(3600), profile, 9);
        assert_eq!(a.events(), b.events());
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        let c = CrashPlan::generate(12, SimDuration::from_secs(3600), profile, 10);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn crash_rate_roughly_matches_profile() {
        // 12 workstations for 10 hours with a 600 s MTTF: ~720 crashes.
        let plan = CrashPlan::generate(
            12,
            SimDuration::from_secs(36_000),
            CrashProfile::paper_default(),
            3,
        );
        let crashes = plan.crash_count();
        assert!(
            (500..1000).contains(&crashes),
            "unexpected crash count {crashes}"
        );
    }

    #[test]
    fn alternation_per_node_starts_with_a_crash() {
        let plan = CrashPlan::generate(
            3,
            SimDuration::from_secs(7200),
            CrashProfile::paper_default(),
            5,
        );
        for node in 0..3u32 {
            let events: Vec<&CrashEvent> = plan
                .events()
                .iter()
                .filter(|e| e.node == NodeId(node))
                .collect();
            if events.is_empty() {
                continue;
            }
            assert!(events[0].is_crash);
            for pair in events.windows(2) {
                assert_ne!(pair[0].is_crash, pair[1].is_crash, "must alternate");
            }
        }
    }

    #[test]
    fn empty_plan() {
        let plan = CrashPlan::none();
        assert_eq!(plan.crash_count(), 0);
        assert!(plan.events().is_empty());
    }
}
