//! Strided multi-group deployment shapes, shared by the scale
//! macro-benchmarks (`bench_scale`, `bench_runtime` in `sle-bench`) and the
//! real-time scale tests.
//!
//! A "strided" deployment spreads `groups` groups of `members` workstations
//! each over `nodes` workstations as evenly as possible, using a stride
//! coprime with `nodes` so `g ↦ (g + j·stride) mod nodes` is a bijection
//! per `j` — every workstation carries the same load. Group `g` (0-based)
//! is addressed as [`GroupId`]`(g + 1)` throughout.

use sle_core::GroupId;
use sle_sim::NodeId;

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// `groups` groups of `members` workstations each, strided over `nodes`
/// workstations: `result[g]` lists the member workstations of group
/// `GroupId(g + 1)`.
///
/// ```
/// use sle_harness::deploy::strided_groups;
///
/// let groups = strided_groups(12, 4, 3);
/// assert_eq!(groups.len(), 4);
/// assert!(groups.iter().all(|members| members.len() == 3));
/// ```
pub fn strided_groups(nodes: usize, groups: usize, members: usize) -> Vec<Vec<NodeId>> {
    let mut stride = nodes / members.max(1) + 1;
    while gcd(stride, nodes) != 1 {
        stride += 1;
    }
    (0..groups)
        .map(|g| {
            (0..members)
                .map(|j| NodeId(((g + j * stride) % nodes) as u32))
                .collect()
        })
        .collect()
}

/// Per-workstation membership derived from a deployment shape: which groups
/// each workstation belongs to, and which workstations it shares a group
/// with (sorted, deduplicated — the restricted gossip peer set that keeps
/// HELLO traffic O(members), not O(nodes)).
#[derive(Debug, Clone)]
pub struct Membership {
    /// `groups_of[i]` — the groups workstation `i` is a member of.
    pub groups_of: Vec<Vec<GroupId>>,
    /// `peers_of[i]` — every workstation sharing at least one group with
    /// `i` (including `i` itself), sorted. Empty if `i` is in no group.
    pub peers_of: Vec<Vec<NodeId>>,
}

/// Computes the [`Membership`] of a deployment shape (`groups[g]` lists
/// the member workstations of group `GroupId(g + 1)`).
pub fn membership(nodes: usize, groups: &[Vec<NodeId>]) -> Membership {
    let mut groups_of: Vec<Vec<GroupId>> = vec![Vec::new(); nodes];
    let mut peers_of: Vec<Vec<NodeId>> = vec![Vec::new(); nodes];
    for (g, members) in groups.iter().enumerate() {
        let group = GroupId(g as u32 + 1);
        for &node in members {
            groups_of[node.index()].push(group);
            for &peer in members {
                if !peers_of[node.index()].contains(&peer) {
                    peers_of[node.index()].push(peer);
                }
            }
        }
    }
    for peers in &mut peers_of {
        peers.sort();
    }
    Membership {
        groups_of,
        peers_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_membership_is_balanced_and_symmetric() {
        let nodes = 20;
        let groups = strided_groups(nodes, 20, 5);
        // groups == nodes: every workstation is in exactly `members` groups.
        let m = membership(nodes, &groups);
        for i in 0..nodes {
            assert_eq!(m.groups_of[i].len(), 5, "workstation {i}");
            // A workstation is always its own peer.
            assert!(m.peers_of[i].contains(&NodeId(i as u32)));
            // Peer sets are sorted and deduplicated.
            let mut sorted = m.peers_of[i].clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted, m.peers_of[i]);
        }
        // Membership within a group never repeats a workstation.
        for members in &groups {
            let mut unique = members.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), members.len());
        }
    }

    #[test]
    fn workstations_outside_every_group_have_no_peers() {
        let groups = strided_groups(10, 1, 3);
        let m = membership(10, &groups);
        let covered: usize = m.peers_of.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(covered, 3);
        assert_eq!(m.groups_of.iter().filter(|g| !g.is_empty()).count(), 3);
    }
}
