//! Small statistics helpers: mean, standard deviation and 95% confidence
//! intervals, as reported in the paper's figures.

/// Summary statistics of a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean (0 when there are no samples).
    pub mean: f64,
    /// Sample standard deviation (0 with fewer than two samples).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95: f64,
}

impl Summary {
    /// Computes summary statistics for `samples`.
    pub fn of(samples: &[f64]) -> Summary {
        let count = samples.len();
        if count == 0 {
            return Summary {
                count,
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / count as f64;
        let std_dev = if count > 1 {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)).sqrt()
        } else {
            0.0
        };
        // Normal approximation; the paper's experiments collect hundreds of
        // samples so the difference from the t-distribution is negligible.
        let ci95 = if count > 1 {
            1.96 * std_dev / (count as f64).sqrt()
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev,
            ci95,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_samples() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Summary::of(&[4.0]);
        assert_eq!(single.count, 1);
        assert_eq!(single.mean, 4.0);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.ci95, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert!(s.ci95 > 0.0);
    }
}
